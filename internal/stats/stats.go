// Package stats provides the small numerical and reporting toolkit the
// experiment harness needs: linear least squares (for fitting the
// Hockney–Jesshope t_e / n_1/2 loop model of paper Table 3), summary
// statistics, fixed-width table rendering, and ASCII series plots for
// regenerating the paper's Figure 10.
package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular reports an unsolvable least-squares system.
var ErrSingular = errors.New("stats: singular normal equations")

// FitLinear solves min ||X c - y||_2 by normal equations with partial
// pivoting. X is row-major: X[i] holds the basis values for sample i.
func FitLinear(X [][]float64, y []float64) ([]float64, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("stats: %d rows, %d targets", len(X), len(y))
	}
	k := len(X[0])
	if k == 0 || len(X) < k {
		return nil, fmt.Errorf("stats: need at least %d samples, have %d", k, len(X))
	}
	// Form A = XᵀX, b = Xᵀy.
	A := make([][]float64, k)
	b := make([]float64, k)
	for i := range A {
		A[i] = make([]float64, k)
	}
	for s, row := range X {
		if len(row) != k {
			return nil, fmt.Errorf("stats: ragged basis row %d", s)
		}
		for i := 0; i < k; i++ {
			b[i] += row[i] * y[s]
			for j := 0; j < k; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	return solve(A, b)
}

// solve performs Gaussian elimination with partial pivoting, in place.
func solve(A [][]float64, b []float64) ([]float64, error) {
	k := len(A)
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / A[col][col]
		for r := col + 1; r < k; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	out := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < k; c++ {
			s -= A[r][c] * out[c]
		}
		out[r] = s / A[r][r]
	}
	return out, nil
}

// HockneyFit is a fitted t(k) = TE * (k + NHalf) loop model.
type HockneyFit struct {
	TE    float64
	NHalf float64
}

// FitHockney fits the loop model to (vector length, time) samples.
func FitHockney(lengths []int, times []float64) (HockneyFit, error) {
	X := make([][]float64, len(lengths))
	for i, k := range lengths {
		X[i] = []float64{float64(k), 1}
	}
	c, err := FitLinear(X, times)
	if err != nil {
		return HockneyFit{}, err
	}
	if c[0] <= 0 {
		return HockneyFit{}, fmt.Errorf("stats: nonpositive fitted t_e %g", c[0])
	}
	return HockneyFit{TE: c[0], NHalf: c[1] / c[0]}, nil
}

// FitPhase fits a whole-phase cost t(n) = te*n + (te*perCall)*calls(n)
// where the phase issues calls(n) inner loops over n total elements
// (sqrt(n) loops for the multiprefix phases). Returns the per-element
// asymptote and the per-call n_1/2 in elements.
func FitPhase(ns []int, calls []float64, times []float64) (HockneyFit, error) {
	X := make([][]float64, len(ns))
	for i := range ns {
		X[i] = []float64{float64(ns[i]), calls[i]}
	}
	c, err := FitLinear(X, times)
	if err != nil {
		return HockneyFit{}, err
	}
	if c[0] <= 0 {
		return HockneyFit{}, fmt.Errorf("stats: nonpositive fitted t_e %g", c[0])
	}
	return HockneyFit{TE: c[0], NHalf: c[1] / c[0]}, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of positive values.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table renders rows as a fixed-width text table with a header row.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of (x, y) points for Plot.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plot renders series as a crude ASCII chart (log10 x-axis, linear y),
// good enough to eyeball the shape of paper Figure 10.
func Plot(width, height int, series []Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			lx := math.Log10(s.X[i])
			minX, maxX = math.Min(minX, lx), math.Max(maxX, lx)
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int((math.Log10(s.X[i]) - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.2f +%s\n", maxY, "")
	for _, row := range grid {
		fmt.Fprintf(&b, "         |%s\n", string(row))
	}
	fmt.Fprintf(&b, "%8.2f +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "          10^%.1f .. 10^%.1f (x, log scale)\n", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "          %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
