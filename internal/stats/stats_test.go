package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	// y = 3x + 7, exactly.
	var X [][]float64
	var y []float64
	for x := 1.0; x <= 5; x++ {
		X = append(X, []float64{x, 1})
		y = append(y, 3*x+7)
	}
	c, err := FitLinear(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-3) > 1e-9 || math.Abs(c[1]-7) > 1e-9 {
		t.Errorf("c = %v, want [3 7]", c)
	}
}

func TestFitLinearRecoverNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		X = append(X, []float64{a, b, 1})
		y = append(y, 2*a-5*b+1+rng.NormFloat64()*0.01)
	}
	c, err := FitLinear(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -5, 1}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 0.05 {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	// Singular: duplicate basis columns.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := FitLinear(X, []float64{1, 2, 3}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := FitLinear([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged basis accepted")
	}
}

func TestFitHockneyRoundTrip(t *testing.T) {
	te, nHalf := 4.1, 40.0
	lengths := []int{10, 50, 100, 500, 1000}
	times := make([]float64, len(lengths))
	for i, k := range lengths {
		times[i] = te * (float64(k) + nHalf)
	}
	fit, err := FitHockney(lengths, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.TE-te) > 1e-9 || math.Abs(fit.NHalf-nHalf) > 1e-6 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestFitHockneyQuick(t *testing.T) {
	prop := func(teRaw, nhRaw uint8) bool {
		te := float64(teRaw%40)/4 + 0.5
		nh := float64(nhRaw % 100)
		lengths := []int{16, 64, 256, 1024}
		times := make([]float64, len(lengths))
		for i, k := range lengths {
			times[i] = te * (float64(k) + nh)
		}
		fit, err := FitHockney(lengths, times)
		return err == nil && math.Abs(fit.TE-te) < 1e-6 && math.Abs(fit.NHalf-nh) < 1e-3
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitPhase(t *testing.T) {
	// t(n) = te*n + te*nh*calls with calls = sqrt(n).
	te, nh := 5.3, 20.0
	ns := []int{100, 400, 1600, 6400}
	calls := make([]float64, len(ns))
	times := make([]float64, len(ns))
	for i, n := range ns {
		calls[i] = math.Sqrt(float64(n))
		times[i] = te*float64(n) + te*nh*calls[i]
	}
	fit, err := FitPhase(ns, calls, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.TE-te) > 1e-9 || math.Abs(fit.NHalf-nh) > 1e-6 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestMeanGeomean(t *testing.T) {
	if Mean(nil) != 0 || Geomean(nil) != 0 {
		t.Error("empty summaries should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if math.Abs(Geomean([]float64{1, 4})-2) > 1e-12 {
		t.Error("geomean wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("beta-long-name", 42)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "3.142") {
		t.Errorf("table:\n%s", out)
	}
	// All rows align to the same width.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestPlot(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1e3, 1e4, 1e5}, Y: []float64{30, 25, 22}},
		{Name: "b", X: []float64{1e3, 1e4, 1e5}, Y: []float64{40, 33, 28}},
	}
	out := Plot(40, 10, s)
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Errorf("plot missing marks:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("plot missing legend:\n%s", out)
	}
	if got := Plot(5, 2, nil); !strings.Contains(got, "no data") {
		t.Errorf("empty plot: %q", got)
	}
}
