// Package scan provides prefix-sum (scan) primitives: sequential scans,
// a work-efficient parallel scan, and the "partition method" recurrence
// solver the paper uses for the bucket-cumulation step of the NAS
// integer sort (§5.1.1, citing Hockney & Jesshope).
//
// A plain scan is the m-label-equal special case of multiprefix; the
// integer sort needs it for the cumulative bucket counts, and the
// chunked multiprefix engine needs it across chunk reductions.
package scan

import (
	"sync"

	"multiprefix/internal/par"
)

// ExclusiveInt64 computes the exclusive prefix sum of xs in place:
// out[i] = sum(xs[0..i-1]), and returns the total.
func ExclusiveInt64(xs []int64) int64 {
	var run int64
	for i, x := range xs {
		xs[i] = run
		run += x
	}
	return run
}

// InclusiveInt64 computes the inclusive prefix sum in place and
// returns the total (the last element, or 0 when empty).
func InclusiveInt64(xs []int64) int64 {
	var run int64
	for i, x := range xs {
		run += x
		xs[i] = run
	}
	return run
}

// ExclusiveFloat64 is ExclusiveInt64 for float64.
func ExclusiveFloat64(xs []float64) float64 {
	var run float64
	for i, x := range xs {
		xs[i] = run
		run += x
	}
	return run
}

// Exclusive computes a generic exclusive scan with an associative
// combine and identity, in place, returning the total.
func Exclusive[T any](xs []T, identity T, combine func(a, b T) T) T {
	run := identity
	for i, x := range xs {
		xs[i] = run
		run = combine(run, x)
	}
	return run
}

// ParallelExclusiveInt64 computes the exclusive prefix sum with the
// two-pass chunked ("partition") method the paper adopts for the
// bucket recurrence: each of W workers sums its chunk, an exclusive
// scan over the W chunk totals yields chunk offsets, then each worker
// scans its chunk locally starting from its offset. Work O(n), depth
// O(n/W + W). workers <= 0 selects GOMAXPROCS.
func ParallelExclusiveInt64(xs []int64, workers int) int64 {
	n := len(xs)
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4096 {
		return ExclusiveInt64(xs)
	}
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := par.Range(n, workers, w)
			var s int64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			totals[w] = s
		}(w)
	}
	wg.Wait()
	grand := ExclusiveInt64(totals)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := par.Range(n, workers, w)
			run := totals[w]
			for i := lo; i < hi; i++ {
				x := xs[i]
				xs[i] = run
				run += x
			}
		}(w)
	}
	wg.Wait()
	return grand
}

// BlellochExclusiveInt64 computes the exclusive prefix sum with the
// classic work-efficient two-sweep tree algorithm (upsweep/downsweep),
// parallelizing each level. It exists as the textbook PRAM scan the
// paper's audience would compare against; ParallelExclusiveInt64 is
// faster on real multicores. Inputs are padded internally to a power
// of two, so any length works.
func BlellochExclusiveInt64(xs []int64, workers int) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	size := 1
	for size < n {
		size *= 2
	}
	buf := make([]int64, size)
	copy(buf, xs)
	// Upsweep: each subtree root accumulates its subtree sum.
	for d := 1; d < size; d *= 2 {
		stride := 2 * d
		count := size / stride
		par.For(count, workers, 4096, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				base := k * stride
				buf[base+stride-1] += buf[base+d-1]
			}
		})
	}
	total := buf[size-1]
	buf[size-1] = 0
	// Downsweep: push prefixes back down the tree.
	for d := size / 2; d >= 1; d /= 2 {
		stride := 2 * d
		count := size / stride
		par.For(count, workers, 4096, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				base := k * stride
				t := buf[base+d-1]
				buf[base+d-1] = buf[base+stride-1]
				buf[base+stride-1] += t
			}
		})
	}
	copy(xs, buf[:n])
	return total
}

// Segmented computes an exclusive segmented scan directly (without
// going through multiprefix): segment starts reset the running value.
// Used as the independent oracle for core.SegmentedScan.
func Segmented[T any](xs []T, starts []bool, identity T, combine func(a, b T) T) []T {
	out := make([]T, len(xs))
	run := identity
	for i, x := range xs {
		if starts[i] || i == 0 {
			run = identity
		}
		out[i] = run
		run = combine(run, x)
	}
	return out
}
