package scan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refExclusive(xs []int64) ([]int64, int64) {
	out := make([]int64, len(xs))
	var run int64
	for i, x := range xs {
		out[i] = run
		run += x
	}
	return out, run
}

func randInt64s(rng *rand.Rand, n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(2001) - 1000)
	}
	return xs
}

func TestExclusiveInt64(t *testing.T) {
	xs := []int64{3, 1, 4, 1, 5}
	total := ExclusiveInt64(xs)
	want := []int64{0, 3, 4, 8, 9}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("xs[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
	if total != 14 {
		t.Errorf("total = %d, want 14", total)
	}
	if ExclusiveInt64(nil) != 0 {
		t.Error("empty scan should return 0")
	}
}

func TestInclusiveInt64(t *testing.T) {
	xs := []int64{3, 1, 4}
	if total := InclusiveInt64(xs); total != 8 {
		t.Errorf("total = %d", total)
	}
	want := []int64{3, 4, 8}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("xs[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
}

func TestExclusiveFloat64(t *testing.T) {
	xs := []float64{1.5, 2.5, 3}
	if total := ExclusiveFloat64(xs); total != 7 {
		t.Errorf("total = %v", total)
	}
	if xs[0] != 0 || xs[1] != 1.5 || xs[2] != 4 {
		t.Errorf("xs = %v", xs)
	}
}

func TestExclusiveGenericConcat(t *testing.T) {
	xs := []string{"a", "b", "c"}
	total := Exclusive(xs, "", func(a, b string) string { return a + b })
	if total != "abc" {
		t.Errorf("total = %q", total)
	}
	if xs[0] != "" || xs[1] != "a" || xs[2] != "ab" {
		t.Errorf("xs = %v", xs)
	}
}

func TestParallelExclusiveMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 4095, 4096, 4097, 100000} {
		for _, w := range []int{0, 1, 2, 8} {
			xs := randInt64s(rng, n)
			want, wantTotal := refExclusive(xs)
			got := append([]int64(nil), xs...)
			total := ParallelExclusiveInt64(got, w)
			if total != wantTotal {
				t.Fatalf("n=%d w=%d: total = %d, want %d", n, w, total, wantTotal)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d w=%d: got[%d] = %d, want %d", n, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBlellochMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 255, 256, 1000, 65536} {
		xs := randInt64s(rng, n)
		want, wantTotal := refExclusive(xs)
		got := append([]int64(nil), xs...)
		total := BlellochExclusiveInt64(got, 4)
		if total != wantTotal {
			t.Fatalf("n=%d: total = %d, want %d", n, total, wantTotal)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestBlellochQuick(t *testing.T) {
	prop := func(raw []int32) bool {
		xs := make([]int64, len(raw))
		for i, r := range raw {
			xs[i] = int64(r)
		}
		want, wantTotal := refExclusive(xs)
		total := BlellochExclusiveInt64(xs, 3)
		if total != wantTotal {
			return false
		}
		for i := range want {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedOracle(t *testing.T) {
	xs := []int64{1, 2, 3, 4, 5}
	starts := []bool{false, false, true, false, true}
	out := Segmented(xs, starts, 0, func(a, b int64) int64 { return a + b })
	want := []int64{0, 1, 0, 3, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}
