package hist

import (
	"fmt"

	"multiprefix/internal/core"
	"multiprefix/internal/vecmp"
	"multiprefix/internal/vector"
)

// This file times the histogram ("vector update loop", paper §1 citing
// the PMM92 compiler directive) on the simulated vector machine, in
// the three styles a 1992 Cray programmer could choose between:
//
//   - a scalar loop (what the compiler emits without help: the update
//     counts[key[i]]++ carries a dependence it cannot prove away);
//   - VL private copies of the count array, one per vector lane, so
//     the gather/add/scatter vectorizes without lane collisions, plus
//     a merge pass over copies*bins counters — the trick the "Vector
//     Update Loop" directive enabled, excellent for small bin counts
//     but with a merge cost proportional to VL*bins;
//   - the multireduce operation, whose cost is insensitive to the bin
//     count — the paper's argument for multiprefix as the primitive.

// VecHistScalar histograms keys with the scalar loop.
func VecHistScalar(m *vector.Machine, keys []int32, bins int) ([]int64, error) {
	if err := checkKeys32(keys, bins); err != nil {
		return nil, err
	}
	counts := make([]int64, bins)
	// Clearing the counts vectorizes even when the update loop cannot.
	m.BeginLoop()
	zero := make([]int64, min(bins, 4096))
	for lo := 0; lo < bins; lo += len(zero) {
		hi := min(lo+len(zero), bins)
		vector.Store(m, counts[lo:hi], zero[:hi-lo])
	}
	m.BeginLoop()
	m.ScalarOp("hist", 2*len(keys))
	for _, k := range keys {
		counts[k]++
	}
	return counts, nil
}

// VecHistPrivate histograms keys with lane-private count copies. The
// copies array is padded to an odd lane stride so neither the update
// scatter nor the merge pass aliases the memory banks.
func VecHistPrivate(m *vector.Machine, keys []int32, bins int) ([]int64, error) {
	if err := checkKeys32(keys, bins); err != nil {
		return nil, err
	}
	n := len(keys)
	vl := m.Config().VL
	laneStride := vl
	if laneStride%2 == 0 {
		laneStride++ // pad: bank-friendly copy layout
	}
	copies := make([]int64, bins*laneStride)
	regK := make([]int32, vl)
	regI := make([]int32, vl)
	regC := make([]int64, vl)
	ones := make([]int64, vl)
	for i := range ones {
		ones[i] = 1
	}
	m.BeginLoop()
	for lo := 0; lo < n; lo += vl {
		hi := min(lo+vl, n)
		k := hi - lo
		vector.Load(m, regK[:k], keys[lo:hi])
		for lane := 0; lane < k; lane++ {
			regI[lane] = regK[lane]*int32(laneStride) + int32(lane)
		}
		vector.VAddScalar(m, regI[:k], regI[:k], 0) // address arithmetic
		vector.Gather(m, regC[:k], copies, regI[:k])
		vector.VAdd(m, regC[:k], regC[:k], ones[:k])
		vector.Scatter(m, copies, regI[:k], regC[:k])
	}
	// Merge: accumulate the VL copies of each bin. One strided-load +
	// add + store sweep over the bins per lane.
	counts := make([]int64, bins)
	if bins > 0 {
		m.BeginLoop()
		chunk := make([]int64, min(bins, 4096))
		acc := make([]int64, len(chunk))
		for blo := 0; blo < bins; blo += len(chunk) {
			bhi := min(blo+len(chunk), bins)
			w := bhi - blo
			vector.VBroadcast(m, acc[:w], 0)
			for lane := 0; lane < vl; lane++ {
				vector.LoadStride(m, chunk[:w], copies, blo*laneStride+lane, laneStride)
				vector.VAdd(m, acc[:w], acc[:w], chunk[:w])
			}
			vector.Store(m, counts[blo:bhi], acc[:w])
		}
	}
	return counts, nil
}

// VecHistMP histograms keys with the multireduce operation
// (ConstantValues: the summed values are all ones).
func VecHistMP(m *vector.Machine, keys []int32, bins int) ([]int64, error) {
	if err := checkKeys32(keys, bins); err != nil {
		return nil, err
	}
	ones := make([]int64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	res, err := vecmp.Multireduce(m, core.AddInt64, ones, keys, bins, vecmp.Config{ConstantValues: true})
	if err != nil {
		return nil, err
	}
	return res.Reductions, nil
}

// HistPoint is one measurement of the vector-update-loop study.
type HistPoint struct {
	Bins                         int
	ScalarClk, PrivateClk, MPClk float64 // clocks per key
}

// HistSweep measures all three methods across bin counts at fixed n.
func HistSweep(cfg vector.Config, keys []int32, binsList []int) ([]HistPoint, error) {
	var out []HistPoint
	for _, bins := range binsList {
		// Clamp keys into range for this bin count.
		ks := make([]int32, len(keys))
		for i, k := range keys {
			ks[i] = k % int32(bins)
		}
		var pt HistPoint
		pt.Bins = bins
		var ref []int64
		for i, f := range []func(*vector.Machine, []int32, int) ([]int64, error){VecHistScalar, VecHistPrivate, VecHistMP} {
			m := vector.New(cfg)
			counts, err := f(m, ks, bins)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				ref = counts
			} else {
				for b := range ref {
					if counts[b] != ref[b] {
						return nil, fmt.Errorf("hist: methods disagree at bin %d", b)
					}
				}
			}
			clk := m.Cycles() / float64(len(ks))
			switch i {
			case 0:
				pt.ScalarClk = clk
			case 1:
				pt.PrivateClk = clk
			case 2:
				pt.MPClk = clk
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

func checkKeys32(keys []int32, bins int) error {
	if bins < 1 {
		return fmt.Errorf("hist: bins=%d < 1", bins)
	}
	for i, k := range keys {
		if k < 0 || int(k) >= bins {
			return fmt.Errorf("hist: keys[%d]=%d outside [0,%d)", i, k, bins)
		}
	}
	return nil
}
