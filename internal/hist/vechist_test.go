package hist

import (
	"math/rand"
	"testing"

	"multiprefix/internal/vector"
)

func randKeys32(rng *rand.Rand, n, bins int) []int32 {
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(rng.Intn(bins))
	}
	return keys
}

// TestVecHistogramsAgree: all three vector-machine histograms must be
// exact for any bin count and distribution.
func TestVecHistogramsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := vector.DefaultConfig()
	for _, n := range []int{0, 1, 63, 64, 65, 5000} {
		for _, bins := range []int{1, 7, 64, 1000} {
			keys := randKeys32(rng, n, bins)
			want := make([]int64, bins)
			for _, k := range keys {
				want[k]++
			}
			for name, f := range map[string]func(*vector.Machine, []int32, int) ([]int64, error){
				"scalar":  VecHistScalar,
				"private": VecHistPrivate,
				"mp":      VecHistMP,
			} {
				m := vector.New(cfg)
				got, err := f(m, keys, bins)
				if err != nil {
					t.Fatalf("%s n=%d bins=%d: %v", name, n, bins, err)
				}
				for b := range want {
					if got[b] != want[b] {
						t.Fatalf("%s n=%d bins=%d: counts[%d] = %d, want %d", name, n, bins, b, got[b], want[b])
					}
				}
			}
		}
	}
	m := vector.New(cfg)
	if _, err := VecHistScalar(m, []int32{5}, 3); err == nil {
		t.Error("out-of-range key accepted")
	}
	if _, err := VecHistPrivate(m, nil, 0); err == nil {
		t.Error("bins=0 accepted")
	}
}

// TestHistSweepCrossover: the study's point — private copies win for
// small bin counts, multireduce is insensitive to the bin count and
// wins once VL*bins rivals n; the scalar loop never wins.
func TestHistSweepCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := vector.DefaultConfig()
	n := 100000
	keys := randKeys32(rng, n, 1<<20)
	points, err := HistSweep(cfg, keys, []int{256, 4096, 65536, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small := points[0]
	big := points[len(points)-1]
	if small.PrivateClk >= small.MPClk {
		t.Errorf("bins=%d: private copies (%.1f clk/key) should beat multireduce (%.1f)",
			small.Bins, small.PrivateClk, small.MPClk)
	}
	if big.MPClk >= big.PrivateClk {
		t.Errorf("bins=%d: multireduce (%.1f clk/key) should beat private copies (%.1f)",
			big.Bins, big.MPClk, big.PrivateClk)
	}
	// Multireduce cost is insensitive to the bin count while bins <= n
	// (the paper's Figure 10 point); beyond that the O(m) arena
	// initialization necessarily dominates for every method.
	var withinN []HistPoint
	for _, p := range points {
		if p.Bins <= n {
			withinN = append(withinN, p)
		}
	}
	if len(withinN) >= 2 {
		first, last := withinN[0], withinN[len(withinN)-1]
		if last.MPClk > 2.2*first.MPClk {
			t.Errorf("multireduce cost drifted with bins<=n: %.1f -> %.1f clk/key", first.MPClk, last.MPClk)
		}
	}
	// The scalar loop never wins while the bin count is modest relative
	// to n. (At bins >> n every vectorized method drowns in clearing
	// and merging auxiliary arrays and the scalar loop's single count
	// array becomes the cheapest — a real effect, not a model quirk.)
	for _, p := range points {
		if p.Bins > n/4 {
			continue
		}
		if p.ScalarClk < p.PrivateClk && p.ScalarClk < p.MPClk {
			t.Errorf("bins=%d: scalar loop should not be the fastest", p.Bins)
		}
	}
}
