// Package hist implements histogramming ("the multireduce operation
// occurs most frequently as histogram computation", paper §1 — the
// loop the "Vector Update Loop" compiler directive was invented for)
// in several styles, so benchmarks can compare the multiprefix-derived
// approach against the implementations a Go programmer would write.
package hist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multiprefix/internal/backend"
	"multiprefix/internal/core"
	"multiprefix/internal/par"
)

// Serial counts key occurrences with the obvious loop.
func Serial(keys []int, m int) ([]int64, error) {
	if err := check(keys, m); err != nil {
		return nil, err
	}
	counts := make([]int64, m)
	for _, k := range keys {
		counts[k]++
	}
	return counts, nil
}

// Atomic counts concurrently with one shared array of atomic counters
// — simple, but contended buckets serialize through the cache line
// (the software analogue of the paper's memory hot-spot).
func Atomic(keys []int, m, workers int) ([]int64, error) {
	if err := check(keys, m); err != nil {
		return nil, err
	}
	counts := make([]int64, m)
	par.For(len(keys), workers, 1024, func(lo, hi int) {
		for _, k := range keys[lo:hi] {
			atomic.AddInt64(&counts[k], 1)
		}
	})
	return counts, nil
}

// Sharded counts into per-worker private arrays and merges — the
// multicore equivalent of the vectorized private-copies histogram.
func Sharded(keys []int, m, workers int) ([]int64, error) {
	if err := check(keys, m); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([][]int64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := par.Range(len(keys), workers, w)
			local := make([]int64, m)
			for _, k := range keys[lo:hi] {
				local[k]++
			}
			shards[w] = local
		}(w)
	}
	wg.Wait()
	counts := make([]int64, m)
	for _, local := range shards {
		for b, c := range local {
			counts[b] += c
		}
	}
	return counts, nil
}

// Multireduce counts via the multiprefix library's multireduce — the
// paper's recommended formulation: one primitive call, no explicit
// concurrency in user code. It routes through the adaptive "auto"
// backend, so tiny inputs run serial instead of paying the chunked
// engine's goroutine coordination.
func Multireduce(keys []int, m int, cfg core.Config) ([]int64, error) {
	return MultireduceOn("auto", keys, m, cfg)
}

// MultireduceOn is Multireduce through an explicitly named backend,
// for experiments that pin the implementation.
func MultireduceOn(backendName string, keys []int, m int, cfg core.Config) ([]int64, error) {
	if err := check(keys, m); err != nil {
		return nil, err
	}
	ones := make([]int64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	return backend.Reduce(backendName, core.AddInt64, ones, keys, m, cfg)
}

// WeightedMultireduce sums arbitrary weights per key (a general
// "vector update loop": dst[key[i]] += w[i]) through the adaptive
// backend.
func WeightedMultireduce(keys []int, weights []int64, m int, cfg core.Config) ([]int64, error) {
	return WeightedMultireduceOn("auto", keys, weights, m, cfg)
}

// WeightedMultireduceOn is WeightedMultireduce through an explicitly
// named backend.
func WeightedMultireduceOn(backendName string, keys []int, weights []int64, m int, cfg core.Config) ([]int64, error) {
	if len(keys) != len(weights) {
		return nil, fmt.Errorf("hist: %d keys, %d weights", len(keys), len(weights))
	}
	if err := check(keys, m); err != nil {
		return nil, err
	}
	return backend.Reduce(backendName, core.AddInt64, weights, keys, m, cfg)
}

func check(keys []int, m int) error {
	if m < 0 {
		return fmt.Errorf("hist: m=%d < 0", m)
	}
	for i, k := range keys {
		if k < 0 || k >= m {
			return fmt.Errorf("hist: keys[%d]=%d outside [0,%d)", i, k, m)
		}
	}
	return nil
}
