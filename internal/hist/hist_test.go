package hist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multiprefix/internal/core"
)

func TestAllHistogramsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 10000} {
		for _, m := range []int{1, 3, 64, 1000} {
			keys := make([]int, n)
			for i := range keys {
				keys[i] = rng.Intn(m)
			}
			want, err := Serial(keys, m)
			if err != nil {
				t.Fatal(err)
			}
			check := func(name string, got []int64, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for b := range want {
					if got[b] != want[b] {
						t.Fatalf("%s: counts[%d] = %d, want %d", name, b, got[b], want[b])
					}
				}
			}
			got, err := Atomic(keys, m, 4)
			check("atomic", got, err)
			got, err = Sharded(keys, m, 4)
			check("sharded", got, err)
			got, err = Multireduce(keys, m, core.Config{Workers: 4})
			check("multireduce", got, err)
		}
	}
}

func TestWeightedMultireduce(t *testing.T) {
	keys := []int{0, 1, 0, 2, 1}
	weights := []int64{5, 3, 2, 7, 1}
	got, err := WeightedMultireduce(keys, weights, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{7, 4, 7}
	for b := range want {
		if got[b] != want[b] {
			t.Errorf("counts[%d] = %d, want %d", b, got[b], want[b])
		}
	}
	if _, err := WeightedMultireduce(keys, weights[:2], 3, core.Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestHistValidation(t *testing.T) {
	if _, err := Serial([]int{5}, 3); err == nil {
		t.Error("out-of-range key accepted")
	}
	if _, err := Serial(nil, -1); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := Atomic([]int{0}, 0, 2); err == nil {
		t.Error("key with m=0 accepted")
	}
}

func TestHistQuick(t *testing.T) {
	prop := func(raw []uint16, mRaw uint8) bool {
		m := int(mRaw)%50 + 1
		keys := make([]int, len(raw))
		for i, r := range raw {
			keys[i] = int(r) % m
		}
		want, err := Serial(keys, m)
		if err != nil {
			return false
		}
		a, errA := Sharded(keys, m, 3)
		b, errB := Multireduce(keys, m, core.Config{Workers: 2})
		if errA != nil || errB != nil {
			return false
		}
		for i := range want {
			if a[i] != want[i] || b[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
