package dpl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"multiprefix/internal/core"
)

func TestIndexAndDist(t *testing.T) {
	idx := Index(5)
	for i, v := range idx {
		if v != int64(i) {
			t.Fatalf("Index[%d] = %d", i, v)
		}
	}
	xs := Dist("a", 3)
	if len(xs) != 3 || xs[2] != "a" {
		t.Fatalf("Dist = %v", xs)
	}
	if len(Index(0)) != 0 {
		t.Fatal("Index(0) not empty")
	}
}

func TestMapAndMap2(t *testing.T) {
	squares := Map(Index(100000), func(x int64) int64 { return x * x }) // big enough to parallelize
	for _, i := range []int{0, 7, 99999} {
		if squares[i] != int64(i)*int64(i) {
			t.Fatalf("squares[%d] = %d", i, squares[i])
		}
	}
	sums, err := Map2([]int64{1, 2}, []int64{10, 20}, func(a, b int64) int64 { return a + b })
	if err != nil || sums[1] != 22 {
		t.Fatalf("Map2 = %v, %v", sums, err)
	}
	if _, err := Map2([]int64{1}, []int64{}, func(a, b int64) int64 { return 0 }); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGatherPermute(t *testing.T) {
	src := []string{"a", "b", "c", "d"}
	got, err := Gather(src, []int{3, 0, 3})
	if err != nil || got[0] != "d" || got[1] != "a" || got[2] != "d" {
		t.Fatalf("Gather = %v, %v", got, err)
	}
	if _, err := Gather(src, []int{4}); err == nil {
		t.Fatal("out-of-range gather accepted")
	}
	out, err := Permute([]string{"x", "y", "z"}, []int{2, 0, 1})
	if err != nil || out[2] != "x" || out[0] != "y" || out[1] != "z" {
		t.Fatalf("Permute = %v, %v", out, err)
	}
	if _, err := Permute([]string{"x", "y"}, []int{0, 0}); err == nil {
		t.Fatal("duplicate positions accepted")
	}
	if _, err := Permute([]string{"x"}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPackSplitCount(t *testing.T) {
	values := []int64{10, 11, 12, 13, 14}
	flags := []bool{true, false, true, false, true}
	if Count(flags) != 3 {
		t.Fatal("Count wrong")
	}
	packed, err := Pack(values, flags)
	if err != nil || len(packed) != 3 || packed[2] != 14 {
		t.Fatalf("Pack = %v, %v", packed, err)
	}
	split, err := Split(values, flags)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{11, 13, 10, 12, 14} // falses (in order) then trues (in order)
	for i := range want {
		if split[i] != want[i] {
			t.Fatalf("Split = %v, want %v", split, want)
		}
	}
	if _, err := Pack(values, flags[:2]); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := Split(values, flags[:2]); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestSplitRadixSortQuick(t *testing.T) {
	prop := func(raw []uint16) bool {
		keys := make([]int64, len(raw))
		for i, r := range raw {
			keys[i] = int64(r)
		}
		got, err := SplitRadixSort(keys, 0)
		if err != nil {
			return false
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := SplitRadixSort([]int64{-1}, 0); err == nil {
		t.Fatal("negative key accepted")
	}
}

func TestScanMatchesSerialForConcat(t *testing.T) {
	// Non-commutative operator through the parallel two-pass scan.
	// (Kept small: string concatenation makes the scan quadratic.)
	n := 5000 // crosses the parallel threshold
	xs := make([]string, n)
	for i := range xs {
		xs[i] = string(rune('a' + i%3))
	}
	scans, total := Scan(core.ConcatString, xs)
	if len(total) != n {
		t.Fatalf("total length %d", len(total))
	}
	// Spot-check positions against direct accumulation.
	acc := ""
	for _, i := range []int{0, 1, 17, n / 2, n - 1} {
		for len(acc) < i {
			acc += xs[len(acc)]
		}
		if scans[i] != acc[:i] {
			t.Fatalf("scan[%d] wrong", i)
		}
	}
}

func TestScanInt64AgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 100000} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(201) - 100)
		}
		scans, total := Scan(core.AddInt64, xs)
		var run int64
		for i, x := range xs {
			if scans[i] != run {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, scans[i], run)
			}
			run += x
		}
		if total != run {
			t.Fatalf("n=%d: total = %d, want %d", n, total, run)
		}
	}
}

func TestReduceAndSegScan(t *testing.T) {
	if Reduce(core.AddInt64, []int64{1, 2, 3}) != 6 {
		t.Fatal("Reduce wrong")
	}
	if Reduce(core.MaxInt64, nil) != core.MaxInt64.Identity {
		t.Fatal("empty Reduce should be identity")
	}
	scans, totals, err := SegScan(core.AddInt64, []int64{1, 2, 3, 4}, []bool{false, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if scans[1] != 1 || scans[2] != 0 || scans[3] != 3 {
		t.Fatalf("SegScan = %v", scans)
	}
	if totals[0] != 3 || totals[1] != 7 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestRankSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 10, 5000} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(64))
		}
		got, err := RankSort(keys, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: RankSort[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
	if _, err := RankSort([]int64{99}, 10); err == nil {
		t.Fatal("out-of-range key accepted")
	}
}

// TestMultiPrefixAtThisLayer: the primitive behaves identically to the
// core serial reference when called through the layer.
func TestMultiPrefixAtThisLayer(t *testing.T) {
	values := []int64{1, 2, 1, 2, 1, 1, 2, 3}
	labels := []int{1, 1, 2, 1, 2, 1, 2, 1}
	res, err := MultiPrefix(core.AddInt64, values, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 0, 3, 1, 5, 2, 6}
	for i := range want {
		if res.Multi[i] != want[i] {
			t.Fatalf("Multi[%d] = %d, want %d", i, res.Multi[i], want[i])
		}
	}
	red, err := MultiReduce(core.AddInt64, values, labels, 4)
	if err != nil || red[1] != 9 {
		t.Fatalf("MultiReduce = %v, %v", red, err)
	}
}
