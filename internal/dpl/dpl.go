// Package dpl is the data-parallel programming layer the paper's
// conclusion argues for: "By structuring algorithms at a more abstract
// level we relieve the programmer from writing machine-dependent code
// ... as parallel computer architectures evolve, only the
// implementations of the parallel primitives will be refined, allowing
// user application code to be reused."
//
// It provides the scan-vector model primitives (Blelloch's vector
// models, the Fluent abstract machine's vocabulary [RBJ88]) with the
// multiprefix operation among them: elementwise maps, permutations,
// pack/split, scans, segmented operations, reductions, and multiprefix
// / multireduce. Everything runs on the multicore engines underneath;
// user code written against this package never mentions goroutines.
package dpl

import (
	"errors"
	"fmt"

	"multiprefix/internal/backend"
	"multiprefix/internal/core"
	"multiprefix/internal/par"
)

// ErrBadVector is wrapped by the structural validation failures.
var ErrBadVector = errors.New("dpl: bad vector")

// grain is the minimum per-goroutine chunk for elementwise work.
const grain = 2048

// Index returns [0, 1, ..., n-1] — the iota vector.
func Index(n int) []int64 {
	out := make([]int64, n)
	par.For(n, 0, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = int64(i)
		}
	})
	return out
}

// Dist replicates x into a vector of length n.
func Dist[T any](x T, n int) []T {
	out := make([]T, n)
	par.For(n, 0, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = x
		}
	})
	return out
}

// Map applies f elementwise.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, len(xs))
	par.For(len(xs), 0, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(xs[i])
		}
	})
	return out
}

// Map2 applies f lane-wise over two equal-length vectors.
func Map2[A, B, C any](as []A, bs []B, f func(A, B) C) ([]C, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("%w: Map2 over %d and %d elements", ErrBadVector, len(as), len(bs))
	}
	out := make([]C, len(as))
	par.For(len(as), 0, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(as[i], bs[i])
		}
	})
	return out, nil
}

// Gather reads src through idx: out[i] = src[idx[i]] (back-permute).
func Gather[T any](src []T, idx []int) ([]T, error) {
	out := make([]T, len(idx))
	var bad error
	par.For(len(idx), 0, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			j := idx[i]
			if j < 0 || j >= len(src) {
				bad = fmt.Errorf("%w: gather index %d outside [0,%d)", ErrBadVector, j, len(src))
				return
			}
			out[i] = src[j]
		}
	})
	if bad != nil {
		return nil, bad
	}
	return out, nil
}

// Permute scatters values to positions: out[pos[i]] = values[i].
// pos must be a permutation of [0, n); duplicates are an error (use
// multiprefix-derived positions to avoid them by construction).
func Permute[T any](values []T, pos []int) ([]T, error) {
	if len(values) != len(pos) {
		return nil, fmt.Errorf("%w: %d values, %d positions", ErrBadVector, len(values), len(pos))
	}
	out := make([]T, len(values))
	seen := make([]bool, len(values))
	for i, p := range pos {
		if p < 0 || p >= len(values) || seen[p] {
			return nil, fmt.Errorf("%w: pos is not a permutation (pos[%d]=%d)", ErrBadVector, i, p)
		}
		seen[p] = true
		out[p] = values[i]
	}
	return out, nil
}

// Count reports how many flags are true.
func Count(flags []bool) int {
	c := 0
	for _, f := range flags {
		if f {
			c++
		}
	}
	return c
}

// Pack keeps the flagged elements, preserving order — positions come
// from a scan over the flags.
func Pack[T any](values []T, keep []bool) ([]T, error) {
	if len(values) != len(keep) {
		return nil, fmt.Errorf("%w: %d values, %d flags", ErrBadVector, len(values), len(keep))
	}
	out := make([]T, 0, len(values))
	for i, f := range keep {
		if f {
			out = append(out, values[i])
		}
	}
	return out, nil
}

// Split stably partitions values: elements with a false flag first (in
// order), then elements with a true flag — the primitive of the
// split-radix sort. Implemented with two scans exactly as the
// scan-vector model prescribes.
func Split[T any](values []T, flags []bool) ([]T, error) {
	if len(values) != len(flags) {
		return nil, fmt.Errorf("%w: %d values, %d flags", ErrBadVector, len(values), len(flags))
	}
	n := len(values)
	// Position of each false element: exclusive scan of !flag.
	// Position of each true element: #false + exclusive scan of flag.
	falsePos := 0
	truePos := n - Count(flags)
	out := make([]T, n)
	for i, f := range flags {
		if f {
			out[truePos] = values[i]
			truePos++
		} else {
			out[falsePos] = values[i]
			falsePos++
		}
	}
	return out, nil
}

// SplitRadixSort sorts non-negative int64 keys with the scan-vector
// model's split-based radix sort: one stable Split per bit, LSB first
// (Blelloch's classic formulation). bits limits the key width; pass 0
// to infer it from the maximum key.
func SplitRadixSort(keys []int64, bits int) ([]int64, error) {
	if bits <= 0 {
		var max int64
		for _, k := range keys {
			if k < 0 {
				return nil, fmt.Errorf("%w: negative key %d", ErrBadVector, k)
			}
			if k > max {
				max = k
			}
		}
		bits = 1
		for (int64(1) << bits) <= max {
			bits++
		}
	}
	cur := append([]int64(nil), keys...)
	for b := 0; b < bits; b++ {
		flags := Map(cur, func(k int64) bool { return k>>b&1 == 1 })
		next, err := Split(cur, flags)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Reduce combines all elements with op, in vector order.
func Reduce[T any](op core.Op[T], xs []T) T {
	acc := op.Identity
	for _, x := range xs {
		acc = op.Combine(acc, x)
	}
	return acc
}

// Scan computes the exclusive scan of xs under op, returning the
// scanned vector and the total. Parallel two-pass (chunk totals, scan,
// local scans) for any associative operator.
func Scan[T any](op core.Op[T], xs []T) ([]T, T) {
	n := len(xs)
	out := make([]T, n)
	workers := par.DefaultWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2*grain {
		acc := op.Identity
		for i, x := range xs {
			out[i] = acc
			acc = op.Combine(acc, x)
		}
		return out, acc
	}
	totals := make([]T, workers)
	par.For(workers, workers, 1, func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			lo, hi := par.Range(n, workers, w)
			acc := op.Identity
			for i := lo; i < hi; i++ {
				acc = op.Combine(acc, xs[i])
			}
			totals[w] = acc
		}
	})
	grand := op.Identity
	offsets := make([]T, workers)
	for w := 0; w < workers; w++ {
		offsets[w] = grand
		grand = op.Combine(grand, totals[w])
	}
	par.For(workers, workers, 1, func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			lo, hi := par.Range(n, workers, w)
			acc := offsets[w]
			for i := lo; i < hi; i++ {
				out[i] = acc
				acc = op.Combine(acc, xs[i])
			}
		}
	})
	return out, grand
}

// SegScan computes a segmented exclusive scan; starts[i] opens a new
// segment. Returns the scans and the per-segment totals. Like every
// primitive at this layer it runs on the adaptive backend — exactly
// the package's thesis: user code names the primitive, the layer
// underneath picks the implementation.
func SegScan[T any](op core.Op[T], xs []T, starts []bool) (scans, totals []T, err error) {
	be, err := backend.Open[T]("auto")
	if err != nil {
		return nil, nil, err
	}
	return core.SegmentedScan(op, xs, starts, be.Engine(core.Config{}))
}

// MultiPrefix is the paper's primitive at this layer, on the adaptive
// backend.
func MultiPrefix[T any](op core.Op[T], values []T, labels []int, m int) (core.Result[T], error) {
	return backend.Compute("auto", op, values, labels, m, core.Config{})
}

// MultiReduce is the reductions-only form.
func MultiReduce[T any](op core.Op[T], values []T, labels []int, m int) ([]T, error) {
	return backend.Reduce("auto", op, values, labels, m, core.Config{})
}

// RankSort sorts int64 keys in [0, m) with the paper's Figure 11
// algorithm expressed entirely in this layer's vocabulary: enumerate
// per class via MultiPrefix over ones, Scan the class counts, add, and
// Permute. Six primitive calls, no loops over elements in user code.
func RankSort(keys []int64, m int) ([]int64, error) {
	labels := Map(keys, func(k int64) int { return int(k) })
	for i, l := range labels {
		if l < 0 || l >= m {
			return nil, fmt.Errorf("%w: key[%d]=%d outside [0,%d)", ErrBadVector, i, l, m)
		}
	}
	res, err := MultiPrefix(core.AddInt64, Dist(int64(1), len(keys)), labels, m)
	if err != nil {
		return nil, err
	}
	cumulative, _ := Scan(core.AddInt64, res.Reductions)
	starts, err := Gather(cumulative, labels)
	if err != nil {
		return nil, err
	}
	ranks, err := Map2(res.Multi, starts, func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, err
	}
	pos := Map(ranks, func(r int64) int { return int(r) })
	return Permute(keys, pos)
}
