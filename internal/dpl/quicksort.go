package dpl

import (
	"fmt"

	"multiprefix/internal/core"
)

// QuickSort sorts int64 keys with the segment-parallel quicksort of
// the scan-vector model (Blelloch's flag-based formulation): the
// vector holds every active partition as a segment; each round splits
// ALL unfinished segments three ways around their middle element
// simultaneously, using one multireduce for the per-(segment, class)
// counts, one multiprefix for stable ranks within each class, and one
// permutation — O(n) data-parallel work per round, O(log n) expected
// rounds. A segment is finished once its min equals its max, so
// duplicate-heavy inputs terminate early rather than thrashing.
//
// This is the algorithm that genuinely needs multiprefix rather than a
// plain segmented scan: the destination of each key depends on its
// rank among equals within its (segment, class) group.
func QuickSort(keys []int64) ([]int64, error) {
	cur, _, err := quickSortRounds(keys)
	return cur, err
}

// QuickSortRounds is QuickSort, also reporting the rounds used (for
// tests and benchmarks of the expected O(log n) round count).
func QuickSortRounds(keys []int64) ([]int64, int, error) {
	return quickSortRounds(keys)
}

func quickSortRounds(keys []int64) ([]int64, int, error) {
	n := len(keys)
	cur := append([]int64(nil), keys...)
	if n < 2 {
		return cur, 0, nil
	}
	flags := make([]bool, n) // segment starts; element 0 implicit
	ones := Dist(int64(1), n)

	for round := 1; ; round++ {
		if round > n+1 {
			return nil, round, fmt.Errorf("dpl: quicksort failed to converge after %d rounds", round)
		}
		segID, numSegs := core.SegmentLabels(flags)
		// Segment geometry.
		segStart := make([]int, numSegs)
		segLen := make([]int, numSegs)
		for i := 0; i < n; i++ {
			s := segID[i]
			if segLen[s] == 0 {
				segStart[s] = i
			}
			segLen[s]++
		}
		// A segment is done when min == max.
		minPer, err := MultiReduce(core.MinInt64, cur, segID, numSegs)
		if err != nil {
			return nil, round, err
		}
		maxPer, err := MultiReduce(core.MaxInt64, cur, segID, numSegs)
		if err != nil {
			return nil, round, err
		}
		anyActive := false
		pivot := make([]int64, numSegs)
		for s := 0; s < numSegs; s++ {
			if minPer[s] != maxPer[s] {
				anyActive = true
				pivot[s] = cur[segStart[s]+segLen[s]/2]
			}
		}
		if !anyActive {
			return cur, round - 1, nil
		}
		// Classify: 0 below, 1 equal, 2 above the segment's pivot.
		// Done segments classify as all-equal (class 1): they permute
		// onto themselves.
		cls := make([]int, n)
		for i := 0; i < n; i++ {
			s := segID[i]
			switch {
			case minPer[s] == maxPer[s]:
				cls[i] = 1
			case cur[i] < pivot[s]:
				cls[i] = 0
			case cur[i] == pivot[s]:
				cls[i] = 1
			default:
				cls[i] = 2
			}
		}
		group := make([]int, n) // label = segID*3 + cls
		for i := range group {
			group[i] = segID[i]*3 + cls[i]
		}
		res, err := MultiPrefix(core.AddInt64, ones, group, 3*numSegs)
		if err != nil {
			return nil, round, err
		}
		counts := res.Reductions
		// Destinations: segment start + class offset + rank in class.
		dest := make([]int, n)
		for i := 0; i < n; i++ {
			s := segID[i]
			off := int64(0)
			if cls[i] >= 1 {
				off += counts[s*3]
			}
			if cls[i] == 2 {
				off += counts[s*3+1]
			}
			dest[i] = segStart[s] + int(off) + int(res.Multi[i])
		}
		next, err := Permute(cur, dest)
		if err != nil {
			return nil, round, err
		}
		cur = next
		// New segment boundaries at the class splits of active segments.
		newFlags := make([]bool, n)
		copy(newFlags, flags)
		for s := 0; s < numSegs; s++ {
			if minPer[s] == maxPer[s] {
				continue
			}
			b1 := int(counts[s*3])
			b2 := b1 + int(counts[s*3+1])
			if b1 > 0 && b1 < segLen[s] {
				newFlags[segStart[s]+b1] = true
			}
			if b2 > 0 && b2 < segLen[s] {
				newFlags[segStart[s]+b2] = true
			}
		}
		flags = newFlags
	}
}
