package dpl

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuickSortBasic(t *testing.T) {
	cases := [][]int64{
		nil,
		{5},
		{2, 1},
		{1, 2},
		{3, 1, 4, 1, 5, 9, 2, 6},
		{7, 7, 7, 7, 7},
		{-3, 5, -3, 0, 12, -100},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, // reverse sorted
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, // already sorted
	}
	for _, keys := range cases {
		got, err := QuickSort(keys)
		if err != nil {
			t.Fatalf("%v: %v", keys, err)
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("QuickSort(%v) = %v, want %v", keys, got, want)
			}
		}
	}
}

func TestQuickSortQuick(t *testing.T) {
	prop := func(raw []int16) bool {
		keys := make([]int64, len(raw))
		for i, r := range raw {
			keys[i] = int64(r)
		}
		got, err := QuickSort(keys)
		if err != nil {
			return false
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortRoundCount: random inputs finish in O(log n) rounds;
// heavily duplicated inputs finish even earlier (the 3-way split
// retires equal runs immediately).
func TestQuickSortRoundCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	sorted, rounds, err := QuickSortRounds(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		t.Fatal("not sorted")
	}
	logN := math.Log2(float64(n))
	if float64(rounds) > 4*logN {
		t.Errorf("rounds = %d for n = %d, want O(log n) ~ %.0f", rounds, n, logN)
	}
	// Two distinct values: exactly one splitting round (plus the
	// terminal check round is not counted).
	few := make([]int64, 1000)
	for i := range few {
		few[i] = int64(i % 2)
	}
	if _, rounds, err = QuickSortRounds(few); err != nil {
		t.Fatal(err)
	}
	if rounds > 2 {
		t.Errorf("two-valued input took %d rounds, want <= 2", rounds)
	}
	// Constant input: zero splitting rounds.
	if _, rounds, err = QuickSortRounds(Dist(int64(9), 100)); err != nil {
		t.Fatal(err)
	}
	if rounds != 0 {
		t.Errorf("constant input took %d rounds, want 0", rounds)
	}
}
