package pram

import (
	"fmt"

	"multiprefix/internal/core"
)

// Stats records the counted cost of one PRAM multiprefix execution,
// broken down by phase as in paper §3.
type Stats struct {
	StepsInit      int64
	StepsSpinetree int64
	StepsRowsums   int64
	StepsSpinesums int64
	StepsMultisums int64
	Work           int64
}

// TotalSteps sums the per-phase step counts.
func (s Stats) TotalSteps() int64 {
	return s.StepsInit + s.StepsSpinetree + s.StepsRowsums + s.StepsSpinesums + s.StepsMultisums
}

// Result is the output of RunMultiprefix.
type Result struct {
	Multi      []int64
	Reductions []int64
	Stats      Stats
}

// memory layout of the multiprefix program inside the machine:
//
//	[0, n)                 labels (input)
//	[n, 2n)                values (input)
//	[2n, 3n)               multi (output)
//	[3n, 3n+m+n)           spine    — the pivot arena of paper Fig 8/9
//	[3n+(m+n), ...)        rowsum
//	[...]                  spinesum
//	[...]                  isSpine markers
type layout struct {
	n, m     int
	labels   int
	values   int
	multi    int
	spine    int
	rowsum   int
	spinesum int
	isSpine  int
	words    int
}

func newLayout(n, m int) layout {
	arena := m + n
	l := layout{n: n, m: m}
	l.labels = 0
	l.values = n
	l.multi = 2 * n
	l.spine = 3 * n
	l.rowsum = l.spine + arena
	l.spinesum = l.rowsum + arena
	l.isSpine = l.spinesum + arena
	l.words = l.isSpine + arena
	return l
}

// RunMultiprefix executes the paper's multiprefix-PLUS algorithm on a
// p-processor simulated PRAM and returns the results plus the counted
// step/work cost. rowLength 0 selects ceil(sqrt(n)). seed drives the
// ARB winner choice; results are independent of it (tested).
//
// Policy discipline per phase, enforced by the simulator:
//
//	SPINETREE gather  — CREW  (concurrent read of bucket spines)
//	SPINETREE scatter — CRCW-ARB (the overwrite-and-test write)
//	everything else   — EREW
func RunMultiprefix(p int, values []int64, labels []int, m, rowLength int, seed int64) (*Result, error) {
	res, _, err := run(p, values, labels, m, rowLength, seed, true, false)
	return res, err
}

// RunMultireduce executes only the reduction part (multireduce, paper
// §4.2): the MULTISUMS phase is skipped entirely. Result.Multi is nil.
func RunMultireduce(p int, values []int64, labels []int, m, rowLength int, seed int64) (*Result, error) {
	res, _, err := run(p, values, labels, m, rowLength, seed, false, false)
	return res, err
}

// RunMultiprefixAudited is RunMultiprefix with access auditing: the
// returned Audit proves which phases issued concurrent accesses.
func RunMultiprefixAudited(p int, values []int64, labels []int, m, rowLength int, seed int64) (*Result, *Audit, error) {
	return run(p, values, labels, m, rowLength, seed, true, true)
}

func run(p int, values []int64, labels []int, m, rowLength int, seed int64, withMultisums, audited bool) (*Result, *Audit, error) {
	n := len(values)
	if len(labels) != n {
		return nil, nil, fmt.Errorf("pram: %d values, %d labels", n, len(labels))
	}
	for i, l := range labels {
		if l < 0 || l >= m {
			return nil, nil, fmt.Errorf("pram: labels[%d]=%d outside [0,%d)", i, l, m)
		}
	}
	lay := newLayout(n, m)
	mach := New(p, lay.words, EREW, seed)
	var audit *Audit
	if audited {
		audit = mach.EnableAudit()
	}

	// Host loads the input (not counted, like reading from the host in
	// the paper's Cray runs).
	mem := mach.Mem()
	for i := 0; i < n; i++ {
		mem[lay.labels+i] = int64(labels[i])
		mem[lay.values+i] = values[i]
	}

	grid := core.NewGrid(n, rowLength)
	var stats Stats

	// INIT: bucket spine pointers to self; rowsum/spinesum/isSpine are
	// already zero (the PLUS identity) in fresh memory, but the
	// algorithm may not assume that, so clear them with counted writes.
	if err := initPhase(mach, lay); err != nil {
		return nil, nil, err
	}
	stats.StepsInit = mach.Steps()

	if err := spinetreePhase(mach, lay, grid); err != nil {
		return nil, nil, err
	}
	stats.StepsSpinetree = mach.Steps() - stats.StepsInit

	if err := rowsumsPhase(mach, lay, grid); err != nil {
		return nil, nil, err
	}
	stats.StepsRowsums = mach.Steps() - stats.StepsInit - stats.StepsSpinetree

	if err := spinesumsPhase(mach, lay, grid); err != nil {
		return nil, nil, err
	}
	stats.StepsSpinesums = mach.Steps() - stats.StepsInit - stats.StepsSpinetree - stats.StepsRowsums

	// Reduction = spinesum ⊕ rowsum per bucket (paper §4.2), snapshot
	// now because MULTISUMS goes on to mutate the bucket spinesums.
	reductions := make([]int64, m)
	for b := 0; b < m; b++ {
		reductions[b] = mem[lay.spinesum+b] + mem[lay.rowsum+b]
	}

	if withMultisums {
		if err := multisumsPhase(mach, lay, grid); err != nil {
			return nil, nil, err
		}
		stats.StepsMultisums = mach.TotalMinus(stats.StepsInit + stats.StepsSpinetree + stats.StepsRowsums + stats.StepsSpinesums)
	}
	stats.Work = mach.Work()

	res := &Result{
		Reductions: reductions,
		Stats:      stats,
	}
	if withMultisums {
		res.Multi = make([]int64, n)
		for i := 0; i < n; i++ {
			res.Multi[i] = mem[lay.multi+i]
		}
	}
	return res, audit, nil
}

// TotalMinus returns Steps() - x; a tiny helper so phase accounting
// reads uniformly.
func (m *Machine) TotalMinus(x int64) int64 { return m.Steps() - x }

func initPhase(m *Machine, lay layout) error {
	m.SetPolicy(EREW)
	arena := lay.m + lay.n
	// Processors load their element's label and value into local
	// registers: two counted EREW read steps.
	if lay.n > 0 {
		regAddrs := make([]int, lay.n)
		for i := range regAddrs {
			regAddrs[i] = lay.labels + i
		}
		if _, err := m.Read(regAddrs); err != nil {
			return fmt.Errorf("init load labels: %w", err)
		}
		for i := range regAddrs {
			regAddrs[i] = lay.values + i
		}
		if _, err := m.Read(regAddrs); err != nil {
			return fmt.Errorf("init load values: %w", err)
		}
	}
	// Bucket spines to self.
	addrs := make([]int, lay.m)
	vals := make([]int64, lay.m)
	for b := 0; b < lay.m; b++ {
		addrs[b] = lay.spine + b
		vals[b] = int64(b)
	}
	if err := m.Write(addrs, vals); err != nil {
		return fmt.Errorf("init spine: %w", err)
	}
	// Clear the three scratch regions.
	addrs = make([]int, arena)
	vals = make([]int64, arena)
	for _, base := range []int{lay.rowsum, lay.spinesum, lay.isSpine} {
		for k := 0; k < arena; k++ {
			addrs[k] = base + k
		}
		if err := m.Write(addrs, vals); err != nil {
			return fmt.Errorf("init scratch: %w", err)
		}
	}
	return nil
}

// spinetreePhase builds the spinetrees, rows top to bottom. The gather
// half-step is a concurrent read (CREW); the scatter half-step is the
// overwrite-and-test CRCW-ARB write.
func spinetreePhase(m *Machine, lay layout, grid core.Grid) error {
	mem := m.Mem()
	for r := grid.Rows - 1; r >= 0; r-- {
		lo, hi := grid.Row(r)
		k := hi - lo
		readAddrs := make([]int, k)
		writeAddrs := make([]int, k)
		arbAddrs := make([]int, k)
		arbVals := make([]int64, k)
		for j := 0; j < k; j++ {
			i := lo + j
			label := int(mem[lay.labels+i])
			readAddrs[j] = lay.spine + label
			writeAddrs[j] = lay.spine + lay.m + i
			arbAddrs[j] = lay.spine + label
			arbVals[j] = int64(lay.m + i)
		}
		m.SetPolicy(CREW)
		if err := m.ReadModifyWrite(readAddrs, writeAddrs, func(_ int, v int64) int64 { return v }); err != nil {
			return fmt.Errorf("spinetree gather row %d: %w", r, err)
		}
		m.SetPolicy(CRCWArb)
		if err := m.Write(arbAddrs, arbVals); err != nil {
			return fmt.Errorf("spinetree scatter row %d: %w", r, err)
		}
	}
	return nil
}

// column returns the element indices of grid column c.
func column(grid core.Grid, c int) []int {
	var idx []int
	for i := c; i < grid.N; i += grid.P {
		idx = append(idx, i)
	}
	return idx
}

// rowsumsPhase accumulates child values into parent rowsums, column by
// column, entirely under EREW (Theorem 1 guarantees distinct parents
// within a column; the simulator verifies it).
func rowsumsPhase(m *Machine, lay layout, grid core.Grid) error {
	m.SetPolicy(EREW)
	mem := m.Mem()
	for c := 0; c < grid.P; c++ {
		idx := column(grid, c)
		if len(idx) == 0 {
			continue
		}
		// Read each element's parent pointer.
		spineAddrs := make([]int, len(idx))
		for j, i := range idx {
			spineAddrs[j] = lay.spine + lay.m + i
		}
		parents, err := m.Read(spineAddrs)
		if err != nil {
			return fmt.Errorf("rowsums read spine col %d: %w", c, err)
		}
		// rowsum[parent] += value, and mark the parent as a spine
		// element; both EREW because parents are distinct.
		rsAddrs := make([]int, len(idx))
		markAddrs := make([]int, len(idx))
		ones := make([]int64, len(idx))
		for j := range idx {
			rsAddrs[j] = lay.rowsum + int(parents[j])
			markAddrs[j] = lay.isSpine + int(parents[j])
			ones[j] = 1
		}
		err = m.ReadModifyWrite(rsAddrs, rsAddrs, func(j int, v int64) int64 {
			return v + mem[lay.values+idx[j]]
		})
		if err != nil {
			return fmt.Errorf("rowsums update col %d: %w", c, err)
		}
		if err := m.Write(markAddrs, ones); err != nil {
			return fmt.Errorf("rowsums mark col %d: %w", c, err)
		}
	}
	return nil
}

// spinesumsPhase runs the spine recurrence, rows bottom to top, under
// EREW (Theorem 2 / Corollary 2 guarantee unique write targets).
func spinesumsPhase(m *Machine, lay layout, grid core.Grid) error {
	m.SetPolicy(EREW)
	mem := m.Mem()
	for r := 0; r < grid.Rows; r++ {
		lo, hi := grid.Row(r)
		// Each element reads its marker; participants forward
		// spinesum+rowsum to their parent.
		markAddrs := make([]int, hi-lo)
		for j := range markAddrs {
			markAddrs[j] = lay.isSpine + lay.m + lo + j
		}
		marks, err := m.Read(markAddrs)
		if err != nil {
			return fmt.Errorf("spinesums marks row %d: %w", r, err)
		}
		var readAddrs, writeAddrs []int
		var own []int
		for j, mk := range marks {
			if mk == 0 {
				continue
			}
			i := lo + j
			own = append(own, i)
			readAddrs = append(readAddrs, lay.spinesum+lay.m+i)
			writeAddrs = append(writeAddrs, lay.spinesum+int(mem[lay.spine+lay.m+i]))
		}
		if len(own) == 0 {
			continue
		}
		err = m.ReadModifyWrite(readAddrs, writeAddrs, func(j int, ownSpinesum int64) int64 {
			return ownSpinesum + mem[lay.rowsum+lay.m+own[j]]
		})
		if err != nil {
			return fmt.Errorf("spinesums update row %d: %w", r, err)
		}
	}
	return nil
}

// multisumsPhase distributes the final prefix values, column by
// column, under EREW.
func multisumsPhase(m *Machine, lay layout, grid core.Grid) error {
	m.SetPolicy(EREW)
	mem := m.Mem()
	for c := 0; c < grid.P; c++ {
		idx := column(grid, c)
		if len(idx) == 0 {
			continue
		}
		spineAddrs := make([]int, len(idx))
		for j, i := range idx {
			spineAddrs[j] = lay.spine + lay.m + i
		}
		parents, err := m.Read(spineAddrs)
		if err != nil {
			return fmt.Errorf("multisums read spine col %d: %w", c, err)
		}
		ssAddrs := make([]int, len(idx))
		multiAddrs := make([]int, len(idx))
		for j := range idx {
			ssAddrs[j] = lay.spinesum + int(parents[j])
			multiAddrs[j] = lay.multi + idx[j]
		}
		// multi[i] = spinesum[parent]
		if err := m.ReadModifyWrite(ssAddrs, multiAddrs, func(_ int, v int64) int64 { return v }); err != nil {
			return fmt.Errorf("multisums fetch col %d: %w", c, err)
		}
		// spinesum[parent] += value[i]
		err = m.ReadModifyWrite(ssAddrs, ssAddrs, func(j int, v int64) int64 {
			return v + mem[lay.values+idx[j]]
		})
		if err != nil {
			return fmt.Errorf("multisums update col %d: %w", c, err)
		}
	}
	return nil
}
