package pram

import "fmt"

// This file holds a second PRAM program: the classic EREW parallel
// prefix sum (Ladner–Fischer style up/down sweeps). It serves two
// purposes: it demonstrates that the simulator is a general substrate
// rather than a multiprefix-only harness, and it provides the
// complexity baseline the paper's §1 comparison implies — a plain scan
// is the all-labels-equal special case of multiprefix, and on the PRAM
// it runs in O(n/p + log n) steps versus multiprefix's O(n/p + sqrt(n)).

// ScanResult is the output of RunScan.
type ScanResult struct {
	Out   []int64
	Total int64
	Steps int64
	Work  int64
}

// RunScan computes the exclusive prefix sum of xs on a p-processor
// EREW PRAM and returns the scanned values, the total, and the counted
// steps/work.
func RunScan(p int, xs []int64) (*ScanResult, error) {
	n := len(xs)
	if n == 0 {
		return &ScanResult{}, nil
	}
	size := 1
	for size < n {
		size *= 2
	}
	mach := New(p, size, EREW, 1)
	copy(mach.Mem(), xs)

	// Upsweep: subtree roots accumulate subtree sums.
	for d := 1; d < size; d *= 2 {
		stride := 2 * d
		var readAddrs, writeAddrs []int
		for base := 0; base+stride-1 < size; base += stride {
			readAddrs = append(readAddrs, base+d-1)
			writeAddrs = append(writeAddrs, base+stride-1)
		}
		mem := mach.Mem()
		err := mach.ReadModifyWrite(readAddrs, writeAddrs, func(i int, left int64) int64 {
			return left + mem[writeAddrs[i]]
		})
		if err != nil {
			return nil, fmt.Errorf("upsweep d=%d: %w", d, err)
		}
	}
	total := mach.Mem()[size-1]
	if err := mach.Write([]int{size - 1}, []int64{0}); err != nil {
		return nil, err
	}
	// Downsweep: push prefixes back down.
	for d := size / 2; d >= 1; d /= 2 {
		stride := 2 * d
		mem := mach.Mem()
		// left' = right; right' = left + right. Two fused batches.
		var leftAddrs, rightAddrs []int
		for base := 0; base+stride-1 < size; base += stride {
			leftAddrs = append(leftAddrs, base+d-1)
			rightAddrs = append(rightAddrs, base+stride-1)
		}
		old := make([]int64, len(leftAddrs))
		err := mach.ReadModifyWrite(leftAddrs, leftAddrs, func(i int, left int64) int64 {
			old[i] = left
			return mem[rightAddrs[i]]
		})
		if err != nil {
			return nil, fmt.Errorf("downsweep left d=%d: %w", d, err)
		}
		err = mach.ReadModifyWrite(rightAddrs, rightAddrs, func(i int, right int64) int64 {
			return old[i] + right
		})
		if err != nil {
			return nil, fmt.Errorf("downsweep right d=%d: %w", d, err)
		}
	}
	out := make([]int64, n)
	copy(out, mach.Mem()[:n])
	return &ScanResult{Out: out, Total: total, Steps: mach.Steps(), Work: mach.Work()}, nil
}
