package pram

import (
	"math"
	"math/rand"
	"testing"

	"multiprefix/internal/core"
)

func randomInput(rng *rand.Rand, n, m int) ([]int64, []int) {
	values := make([]int64, n)
	labels := make([]int, n)
	for i := range values {
		values[i] = int64(rng.Intn(201) - 100)
		labels[i] = rng.Intn(m)
	}
	return values, labels
}

// TestPRAMMultiprefixMatchesSerial: the PRAM execution must agree with
// the serial reference on every label distribution, including the
// policy-enforced EREW phases succeeding.
func TestPRAMMultiprefixMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		n, m int
		gen  func(i int) int
	}{
		{"uniform", 100, 13, func(int) int { return rng.Intn(13) }},
		{"all-equal", 81, 3, func(int) int { return 1 }},
		{"distinct", 64, 64, func(i int) int { return i }},
		{"two-classes", 50, 2, func(i int) int { return i % 2 }},
		{"single", 1, 1, func(int) int { return 0 }},
		{"ragged", 37, 5, func(int) int { return rng.Intn(5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			values := make([]int64, tc.n)
			labels := make([]int, tc.n)
			for i := range values {
				values[i] = int64(rng.Intn(50) - 25)
				labels[i] = tc.gen(i)
			}
			want, err := core.Serial(core.AddInt64, values, labels, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			p := int(math.Sqrt(float64(tc.n))) + 1
			got, err := RunMultiprefix(p, values, labels, tc.m, 0, 42)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Multi {
				if got.Multi[i] != want.Multi[i] {
					t.Fatalf("Multi[%d] = %d, want %d", i, got.Multi[i], want.Multi[i])
				}
			}
			for b := range want.Reductions {
				if got.Reductions[b] != want.Reductions[b] {
					t.Fatalf("Reductions[%d] = %d, want %d", b, got.Reductions[b], want.Reductions[b])
				}
			}
		})
	}
}

// TestPRAMResultsAreWinnerIndependent: the ARB write may crown any
// winner; the algorithm's outputs must not depend on which.
func TestPRAMResultsAreWinnerIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	values, labels := randomInput(rng, 144, 7)
	var first *Result
	for seed := int64(0); seed < 8; seed++ {
		res, err := RunMultiprefix(12, values, labels, 7, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		for i := range first.Multi {
			if res.Multi[i] != first.Multi[i] {
				t.Fatalf("seed %d: Multi[%d] = %d, differs from seed 0's %d", seed, i, res.Multi[i], first.Multi[i])
			}
		}
	}
}

// TestPRAMStepComplexity: with p = sqrt(n) processors the four main
// phases must take O(sqrt(n)) steps — concretely, bounded by C*sqrt(n)
// for a small constant C across a wide n range (paper §3).
func TestPRAMStepComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		p := int(math.Sqrt(float64(n)))
		m := p
		values, labels := randomInput(rng, n, m)
		res, err := RunMultiprefix(p, values, labels, m, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		mainSteps := res.Stats.TotalSteps() - res.Stats.StepsInit
		root := math.Sqrt(float64(n))
		if float64(mainSteps) > 16*root {
			t.Errorf("n=%d: main-phase steps = %d > 16*sqrt(n) = %.0f", n, mainSteps, 16*root)
		}
		if float64(mainSteps) < 4*root-8 {
			t.Errorf("n=%d: main-phase steps = %d suspiciously below 4*sqrt(n)", n, mainSteps)
		}
	}
}

// TestPRAMWorkEfficiency: total work must be O(n + m) — the paper's
// work-efficiency claim. We bound it by C*(n+m) with C covering the
// constant number of memory batches per phase.
func TestPRAMWorkEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var prevRatio float64
	for _, n := range []int{256, 1024, 4096, 16384, 65536} {
		m := n / 4
		values, labels := randomInput(rng, n, m)
		res, err := RunMultiprefix(int(math.Sqrt(float64(n))), values, labels, m, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.Stats.Work) / float64(n+m)
		if ratio > 20 {
			t.Errorf("n=%d: work/(n+m) = %.1f, not linear", n, ratio)
		}
		// The ratio must not grow with n (work efficiency).
		if prevRatio != 0 && ratio > prevRatio*1.25 {
			t.Errorf("n=%d: work ratio grew from %.2f to %.2f", n, prevRatio, ratio)
		}
		prevRatio = ratio
	}
}

// TestPRAMMultireduceMatches: reductions only, no MULTISUMS steps.
func TestPRAMMultireduceMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	values, labels := randomInput(rng, 225, 9)
	want, err := core.SerialReduce(core.AddInt64, values, labels, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMultireduce(15, values, labels, 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for b := range want {
		if res.Reductions[b] != want[b] {
			t.Fatalf("Reductions[%d] = %d, want %d", b, res.Reductions[b], want[b])
		}
	}
	if res.Multi != nil {
		t.Error("multireduce should not produce Multi")
	}
	if res.Stats.StepsMultisums != 0 {
		t.Errorf("multireduce counted %d MULTISUMS steps", res.Stats.StepsMultisums)
	}
	full, err := RunMultiprefix(15, values, labels, 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalSteps() >= full.Stats.TotalSteps() {
		t.Errorf("multireduce (%d steps) not cheaper than multiprefix (%d steps)",
			res.Stats.TotalSteps(), full.Stats.TotalSteps())
	}
}

func TestPRAMInputValidation(t *testing.T) {
	if _, err := RunMultiprefix(4, []int64{1}, []int{0, 1}, 2, 0, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := RunMultiprefix(4, []int64{1}, []int{5}, 2, 0, 1); err == nil {
		t.Error("label out of range should fail")
	}
}

// TestPlusWriteSimulation: the ARB simulation computes the same cell
// contents as the native PLUS machine.
func TestPlusWriteSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, mCells := 400, 16
	addrs := make([]int, n)
	vals := make([]int64, n)
	for i := range addrs {
		addrs[i] = rng.Intn(mCells)
		vals[i] = int64(rng.Intn(100))
	}
	native := make([]int64, mCells)
	for b := range native {
		native[b] = int64(b) * 1000
	}
	sim := append([]int64(nil), native...)

	nativeSteps, err := NativePlusWrite(8, native, addrs, vals)
	if err != nil {
		t.Fatal(err)
	}
	simSteps, err := SimulatePlusWrite(8, sim, addrs, vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	for b := range native {
		if sim[b] != native[b] {
			t.Fatalf("cell %d: sim %d, native %d", b, sim[b], native[b])
		}
	}
	if nativeSteps >= simSteps {
		t.Errorf("native %d steps, sim %d steps: simulation should cost more", nativeSteps, simSteps)
	}
}

// TestPlusSimulationConstantSlowdown is the §1.2 theorem: for
// n = alpha^2 p^2 the simulation's slowdown over the n/p work floor
// must stay bounded (and roughly flat) as alpha grows.
func TestPlusSimulationConstantSlowdown(t *testing.T) {
	p := 8
	points, err := MeasureSlowdown(p, []int{1, 2, 3, 4, 6, 8}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	first := points[0].Slowdown
	last := points[len(points)-1].Slowdown
	for _, pt := range points {
		if pt.Slowdown > 64 {
			t.Errorf("alpha=%d: slowdown %.1f unexpectedly large", pt.Alpha, pt.Slowdown)
		}
	}
	// Slowdown should not grow with alpha; it typically shrinks toward
	// an asymptote as startup costs amortize.
	if last > first*1.5 {
		t.Errorf("slowdown grew with alpha: %.2f -> %.2f", first, last)
	}
}

// TestAuditProvesEREWPhases: access auditing must show that concurrent
// writes happen only under the CRCW-ARB policy (i.e. only in the
// SPINETREE scatter), concurrent reads only under CREW (the SPINETREE
// gather), and never under EREW — turning the paper's Theorems 1-2
// from assumptions into observations.
func TestAuditProvesEREWPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	values, labels := randomInput(rng, 400, 5) // heavy enough loads for real contention
	_, audit, err := RunMultiprefixAudited(20, values, labels, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if audit.MaxWriters[CRCWArb] < 2 {
		t.Errorf("expected contended ARB writes in SPINETREE, max writers = %d", audit.MaxWriters[CRCWArb])
	}
	if audit.MaxReaders[CREW] < 2 {
		t.Errorf("expected concurrent CREW reads in SPINETREE, max readers = %d", audit.MaxReaders[CREW])
	}
	if audit.MaxWriters[EREW] > 1 {
		t.Errorf("EREW phase had %d concurrent writers", audit.MaxWriters[EREW])
	}
	if audit.MaxReaders[EREW] > 1 {
		t.Errorf("EREW phase had %d concurrent readers", audit.MaxReaders[EREW])
	}
	if audit.MaxWriters[CREW] > 1 {
		t.Errorf("CREW step had %d concurrent writers", audit.MaxWriters[CREW])
	}
	if audit.ReadBatches == 0 || audit.WriteBatches == 0 {
		t.Error("audit recorded no batches")
	}
	if audit.ConcurrentWriteBatches == 0 {
		t.Error("no concurrent write batches recorded despite heavy load")
	}
}

// TestAuditAllEqualLabels: with one label, every SPINETREE scatter row
// is fully contended — max ARB writers equals the row length.
func TestAuditAllEqualLabels(t *testing.T) {
	n := 144 // 12x12 grid
	values := make([]int64, n)
	labels := make([]int, n)
	for i := range values {
		values[i] = 1
	}
	_, audit, err := RunMultiprefixAudited(12, values, labels, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if audit.MaxWriters[CRCWArb] != 12 {
		t.Errorf("max ARB writers = %d, want the full row length 12", audit.MaxWriters[CRCWArb])
	}
}
