package pram

import (
	"errors"
	"testing"
)

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{EREW: "EREW", CREW: "CREW", CRCWArb: "CRCW-ARB", CRCWPlus: "CRCW-PLUS", Policy(9): "Policy(9)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(4, 8, EREW, 1)
	if err := m.Write([]int{0, 3, 7}, []int64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read([]int{7, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 30 || got[1] != 10 || got[2] != 20 {
		t.Errorf("got %v", got)
	}
}

func TestEREWRejectsConcurrentReads(t *testing.T) {
	m := New(4, 8, EREW, 1)
	if _, err := m.Read([]int{1, 2, 1}); !errors.Is(err, ErrConflict) {
		t.Errorf("err = %v, want ErrConflict", err)
	}
}

func TestCREWAllowsConcurrentReadsRejectsWrites(t *testing.T) {
	m := New(4, 8, CREW, 1)
	if _, err := m.Read([]int{1, 1, 1}); err != nil {
		t.Errorf("concurrent read under CREW: %v", err)
	}
	if err := m.Write([]int{2, 2}, []int64{1, 2}); !errors.Is(err, ErrConflict) {
		t.Errorf("err = %v, want ErrConflict", err)
	}
}

func TestCRCWArbPicksOneWriter(t *testing.T) {
	winners := map[int64]bool{}
	for seed := int64(0); seed < 20; seed++ {
		m := New(4, 4, CRCWArb, seed)
		if err := m.Write([]int{2, 2, 2}, []int64{7, 8, 9}); err != nil {
			t.Fatal(err)
		}
		v := m.Mem()[2]
		if v != 7 && v != 8 && v != 9 {
			t.Fatalf("winner value %d not among writers", v)
		}
		winners[v] = true
	}
	if len(winners) < 2 {
		t.Errorf("ARB winner never varied across 20 seeds: %v", winners)
	}
}

func TestCRCWPlusCombines(t *testing.T) {
	m := New(4, 4, CRCWPlus, 1)
	m.Mem()[1] = 100
	if err := m.Write([]int{1, 1, 3}, []int64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	if m.Mem()[1] != 111 || m.Mem()[3] != 7 {
		t.Errorf("mem = %v", m.Mem()[:4])
	}
}

func TestStepAccountingVirtualProcessors(t *testing.T) {
	m := New(4, 100, EREW, 1)
	addrs := make([]int, 10)
	vals := make([]int64, 10)
	for i := range addrs {
		addrs[i] = i
	}
	if err := m.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	if m.Steps() != 3 { // ceil(10/4)
		t.Errorf("steps = %d, want 3", m.Steps())
	}
	if m.Work() != 10 {
		t.Errorf("work = %d, want 10", m.Work())
	}
	m.ResetCounters()
	if m.Steps() != 0 || m.Work() != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestReadModifyWriteCountsOnce(t *testing.T) {
	m := New(2, 10, EREW, 1)
	m.Mem()[0], m.Mem()[1] = 5, 6
	err := m.ReadModifyWrite([]int{0, 1}, []int{2, 3}, func(i int, v int64) int64 { return v * 10 })
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem()[2] != 50 || m.Mem()[3] != 60 {
		t.Errorf("mem = %v", m.Mem()[:4])
	}
	if m.Steps() != 1 {
		t.Errorf("steps = %d, want 1 (fused)", m.Steps())
	}
	if m.Work() != 2 {
		t.Errorf("work = %d, want 2", m.Work())
	}
}

func TestOutOfRangeAddresses(t *testing.T) {
	m := New(2, 4, EREW, 1)
	if _, err := m.Read([]int{4}); err == nil {
		t.Error("read past end should fail")
	}
	if _, err := m.Read([]int{-1}); err == nil {
		t.Error("negative read should fail")
	}
	if err := m.Write([]int{4}, []int64{1}); err == nil {
		t.Error("write past end should fail")
	}
	if err := m.Write([]int{0, 1}, []int64{1}); err == nil {
		t.Error("mismatched batch should fail")
	}
	if err := m.ReadModifyWrite([]int{0}, []int{0, 1}, nil); err == nil {
		t.Error("mismatched rmw should fail")
	}
}

func TestNewPanicsWithoutProcessors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 4, EREW, 1)
}

func TestCRCWPriorityLowestWins(t *testing.T) {
	m := New(4, 4, CRCWPriority, 1)
	if err := m.Write([]int{2, 2, 2, 3}, []int64{7, 8, 9, 1}); err != nil {
		t.Fatal(err)
	}
	if m.Mem()[2] != 7 {
		t.Errorf("mem[2] = %d, want 7 (lowest-numbered writer)", m.Mem()[2])
	}
	if m.Mem()[3] != 1 {
		t.Errorf("mem[3] = %d, want 1", m.Mem()[3])
	}
	if CRCWPriority.String() != "CRCW-PRIORITY" {
		t.Errorf("String() = %q", CRCWPriority.String())
	}
}

// TestMultiprefixRunsUnderPriority: any PRIORITY outcome is a legal ARB
// outcome, so the multiprefix program must produce identical results
// when the scatter phase runs under the stronger policy.
func TestMultiprefixRunsUnderPriority(t *testing.T) {
	// Covered implicitly: RunMultiprefix sets policies itself; here we
	// check the policy lattice directly on a combining pattern.
	arb := New(4, 4, CRCWArb, 5)
	pri := New(4, 4, CRCWPriority, 5)
	addrs := []int{1, 1, 1}
	vals := []int64{10, 20, 30}
	if err := arb.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	if err := pri.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	got := arb.Mem()[1]
	if got != 10 && got != 20 && got != 30 {
		t.Errorf("ARB winner %d not among written values", got)
	}
	if pri.Mem()[1] != 10 {
		t.Errorf("PRIORITY winner %d, want 10", pri.Mem()[1])
	}
}
