// Package pram simulates a synchronous PRAM (parallel random access
// machine) with selectable memory-conflict policy. It exists to make
// the paper's theoretical claims checkable by running them:
//
//   - the multiprefix algorithm of §2.2 executes on the simulated
//     machine in O(sqrt(n)) counted steps and O(n) counted work;
//   - the SPINETREE phase genuinely requires only CRCW-ARB writes;
//   - the remaining phases execute under a strict EREW policy, which
//     the simulator enforces by failing on any concurrent access;
//   - a CRCW-PLUS combining write can be simulated on the ARB machine
//     with constant slowdown once n >= p^2 (§1.2).
//
// The machine executes data-parallel memory steps: a step is a batch
// of per-processor reads or writes issued simultaneously. When a batch
// holds more operations than there are processors, each processor
// simulates a run of virtual processors and the step counter advances
// by ceil(k/p) — the standard Brent-style accounting the paper uses.
package pram

import (
	"errors"
	"fmt"
	"math/rand"
)

// Policy is the memory conflict-resolution discipline.
type Policy int

const (
	// EREW forbids any two processors from touching the same address
	// in one step, for both reads and writes.
	EREW Policy = iota
	// CREW allows concurrent reads, forbids concurrent writes.
	CREW
	// CRCWArb allows concurrent writes; an arbitrary processor wins.
	// The simulator picks the winner pseudo-randomly so tests can
	// verify that algorithm results are winner-independent.
	CRCWArb
	// CRCWPlus allows concurrent writes and combines all written
	// values into the target with addition (the combining-write model
	// of CLR §30 / the paper's §1.2).
	CRCWPlus
	// CRCWPriority allows concurrent writes; the lowest-numbered
	// processor wins. Strictly stronger than ARB (any PRIORITY outcome
	// is a legal ARB outcome, so ARB algorithms run unchanged).
	CRCWPriority
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWArb:
		return "CRCW-ARB"
	case CRCWPlus:
		return "CRCW-PLUS"
	case CRCWPriority:
		return "CRCW-PRIORITY"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ErrConflict reports a memory access forbidden by the active policy.
var ErrConflict = errors.New("pram: memory access conflict")

// Audit accumulates memory-access concurrency statistics when enabled:
// how contended each step's batches were, per policy. It is how tests
// verify — rather than assume — that only the SPINETREE phase of the
// multiprefix program ever issues concurrent writes.
type Audit struct {
	// ReadBatches / WriteBatches count the parallel memory steps.
	ReadBatches, WriteBatches int64
	// MaxReaders / MaxWriters record, per policy, the largest number
	// of processors touching one address in a single batch.
	MaxReaders, MaxWriters map[Policy]int
	// ConcurrentWriteBatches counts write batches in which some
	// address had more than one writer.
	ConcurrentWriteBatches int64
}

// Machine is a synchronous shared-memory PRAM.
type Machine struct {
	p      int
	mem    []int64
	policy Policy
	rng    *rand.Rand

	steps int64
	work  int64
	audit *Audit
}

// New creates a machine with p processors, words cells of zeroed
// shared memory, and the given conflict policy. seed drives the
// ARB-winner choice.
func New(p, words int, policy Policy, seed int64) *Machine {
	if p < 1 {
		panic("pram: need at least one processor")
	}
	if words < 0 {
		words = 0
	}
	return &Machine{
		p:      p,
		mem:    make([]int64, words),
		policy: policy,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Processors reports the machine's processor count p.
func (m *Machine) Processors() int { return m.p }

// Policy reports the active conflict policy.
func (m *Machine) Policy() Policy { return m.policy }

// SetPolicy switches the conflict policy; the paper's algorithm uses
// CRCW-ARB for the SPINETREE phase and EREW afterwards.
func (m *Machine) SetPolicy(p Policy) { m.policy = p }

// Steps reports the parallel steps executed so far.
func (m *Machine) Steps() int64 { return m.steps }

// Work reports the total operations executed (sum over steps of
// participating virtual processors).
func (m *Machine) Work() int64 { return m.work }

// ResetCounters zeroes the step and work counters.
func (m *Machine) ResetCounters() { m.steps, m.work = 0, 0 }

// EnableAudit turns on access auditing and returns the live Audit
// record (updated in place by subsequent Read/Write calls).
func (m *Machine) EnableAudit() *Audit {
	m.audit = &Audit{
		MaxReaders: make(map[Policy]int),
		MaxWriters: make(map[Policy]int),
	}
	return m.audit
}

// recordAudit folds one batch's address multiplicities into the audit.
func (m *Machine) recordAudit(addrs []int, isWrite bool) {
	if m.audit == nil {
		return
	}
	maxMult := 0
	count := make(map[int]int, len(addrs))
	for _, a := range addrs {
		count[a]++
		if count[a] > maxMult {
			maxMult = count[a]
		}
	}
	if isWrite {
		m.audit.WriteBatches++
		if maxMult > m.audit.MaxWriters[m.policy] {
			m.audit.MaxWriters[m.policy] = maxMult
		}
		if maxMult > 1 {
			m.audit.ConcurrentWriteBatches++
		}
	} else {
		m.audit.ReadBatches++
		if maxMult > m.audit.MaxReaders[m.policy] {
			m.audit.MaxReaders[m.policy] = maxMult
		}
	}
}

// Mem exposes the shared memory for loading inputs and reading
// results; host-side access through Mem is not counted or policed.
func (m *Machine) Mem() []int64 { return m.mem }

// account charges one batch of k virtual-processor operations.
func (m *Machine) account(k int) {
	if k == 0 {
		return
	}
	m.steps += int64((k + m.p - 1) / m.p)
	m.work += int64(k)
}

// checkAddrs validates a batch against memory bounds.
func (m *Machine) checkAddrs(addrs []int) error {
	for _, a := range addrs {
		if a < 0 || a >= len(m.mem) {
			return fmt.Errorf("pram: address %d outside memory of %d words", a, len(m.mem))
		}
	}
	return nil
}

// Read performs one parallel read step: virtual processor i reads
// addrs[i]. Under EREW, duplicate addresses are a conflict.
func (m *Machine) Read(addrs []int) ([]int64, error) {
	if err := m.checkAddrs(addrs); err != nil {
		return nil, err
	}
	if m.policy == EREW {
		if a, b, dup := firstDuplicate(addrs); dup {
			return nil, fmt.Errorf("%w: processors %d and %d read address %d under EREW", ErrConflict, a, b, addrs[a])
		}
	}
	out := make([]int64, len(addrs))
	for i, a := range addrs {
		out[i] = m.mem[a]
	}
	m.recordAudit(addrs, false)
	m.account(len(addrs))
	return out, nil
}

// Write performs one parallel write step: virtual processor i writes
// vals[i] to addrs[i]. Duplicate addresses are resolved by the policy:
// EREW/CREW fail, CRCW-ARB keeps a pseudo-randomly chosen writer's
// value, CRCW-PLUS sums all written values into the cell.
func (m *Machine) Write(addrs []int, vals []int64) error {
	if len(addrs) != len(vals) {
		return fmt.Errorf("pram: write batch mismatch: %d addrs, %d vals", len(addrs), len(vals))
	}
	if err := m.checkAddrs(addrs); err != nil {
		return err
	}
	switch m.policy {
	case EREW, CREW:
		if a, b, dup := firstDuplicate(addrs); dup {
			return fmt.Errorf("%w: processors %d and %d write address %d under %v", ErrConflict, a, b, addrs[a], m.policy)
		}
		for i, a := range addrs {
			m.mem[a] = vals[i]
		}
	case CRCWArb:
		// Visit writers in a random order; the last writer to each
		// address wins, so the winner is arbitrary.
		order := m.rng.Perm(len(addrs))
		for _, i := range order {
			m.mem[addrs[i]] = vals[i]
		}
	case CRCWPlus:
		for i, a := range addrs {
			m.mem[a] += vals[i]
		}
	case CRCWPriority:
		// Lowest-numbered processor wins: write in reverse batch order
		// so earlier writers overwrite later ones.
		for i := len(addrs) - 1; i >= 0; i-- {
			m.mem[addrs[i]] = vals[i]
		}
	}
	m.recordAudit(addrs, true)
	m.account(len(addrs))
	return nil
}

// ReadModifyWrite performs a combined read+compute+write step:
// virtual processor i reads readAddrs[i], applies fn, and writes the
// result to writeAddrs[i]. PRAM semantics (all reads before all
// writes) are preserved. Both halves are policed; the step counts once
// (read/compute/write is one instruction on the model machine).
func (m *Machine) ReadModifyWrite(readAddrs, writeAddrs []int, fn func(i int, read int64) int64) error {
	if len(readAddrs) != len(writeAddrs) {
		return fmt.Errorf("pram: rmw batch mismatch: %d reads, %d writes", len(readAddrs), len(writeAddrs))
	}
	vals, err := m.Read(readAddrs)
	if err != nil {
		return err
	}
	// Undo the read's separate accounting; the fused step charges once.
	m.steps -= int64((len(readAddrs) + m.p - 1) / m.p)
	m.work -= int64(len(readAddrs))
	for i := range vals {
		vals[i] = fn(i, vals[i])
	}
	return m.Write(writeAddrs, vals)
}

// firstDuplicate reports two batch indices holding the same address.
func firstDuplicate(addrs []int) (int, int, bool) {
	seen := make(map[int]int, len(addrs))
	for i, a := range addrs {
		if j, ok := seen[a]; ok {
			return j, i, true
		}
		seen[a] = i
	}
	return 0, 0, false
}
