package pram

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunScanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 100, 1000} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(201) - 100)
		}
		want := make([]int64, n)
		var run int64
		for i, x := range xs {
			want[i] = run
			run += x
		}
		res, err := RunScan(8, xs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Total != run {
			t.Fatalf("n=%d: total = %d, want %d", n, res.Total, run)
		}
		for i := range want {
			if res.Out[i] != want[i] {
				t.Fatalf("n=%d: out[%d] = %d, want %d", n, i, res.Out[i], want[i])
			}
		}
	}
}

// TestScanStepComplexity: with p = n processors the EREW scan runs in
// O(log n) steps; with fewer, O(n/p + log n). It is exponentially
// faster than the multiprefix program in steps — consistent with §1's
// framing that multiprefix pays its sqrt(n) step complexity to buy
// label-dependent combining, which a plain scan cannot express.
func TestScanStepComplexity(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = 1
		}
		res, err := RunScan(n, xs)
		if err != nil {
			t.Fatal(err)
		}
		logN := math.Log2(float64(n))
		if float64(res.Steps) > 4*logN+8 {
			t.Errorf("n=%d with p=n: steps = %d, want O(log n) ~ %.0f", n, res.Steps, logN)
		}
		if float64(res.Work) > 6*float64(n) {
			t.Errorf("n=%d: work = %d, not O(n)", n, res.Work)
		}
		// Compare with the multiprefix program on the same input
		// (single label): scan is asymptotically far fewer steps.
		labels := make([]int, n)
		mp, err := RunMultiprefix(n, xs, labels, 1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps >= mp.Stats.TotalSteps() {
			t.Errorf("n=%d: EREW scan (%d steps) should need fewer steps than multiprefix (%d)",
				n, res.Steps, mp.Stats.TotalSteps())
		}
		// And the scan's values agree with multiprefix's Multi.
		for i := range mp.Multi {
			if res.Out[i] != mp.Multi[i] {
				t.Fatalf("n=%d: scan/multiprefix disagree at %d", n, i)
			}
		}
	}
}
