package pram

import "fmt"

// This file realizes the paper's §1.2 claim: a CRCW-PLUS PRAM (whose
// concurrent writes combine by addition) can be simulated on a
// CRCW-ARB PRAM with only constant slowdown for problem sizes
// n >= p^2. The hard instruction to simulate is the combining
// concurrent write — everything else the two models share — and a
// combining write of n values to m cells is exactly a multireduce.

// NativePlusWrite performs the combining write cells[addrs[i]] +=
// vals[i] on a p-processor CRCW-PLUS machine and returns the counted
// steps: one write batch, ceil(n/p) steps.
func NativePlusWrite(p int, cells []int64, addrs []int, vals []int64) (int64, error) {
	if len(addrs) != len(vals) {
		return 0, fmt.Errorf("pram: %d addrs, %d vals", len(addrs), len(vals))
	}
	m := New(p, len(cells), CRCWPlus, 1)
	copy(m.Mem(), cells)
	machAddrs := make([]int, len(addrs))
	copy(machAddrs, addrs)
	if err := m.Write(machAddrs, vals); err != nil {
		return 0, err
	}
	copy(cells, m.Mem())
	return m.Steps(), nil
}

// SimulatePlusWrite performs the same combining write on a p-processor
// CRCW-ARB machine, using the multireduce algorithm to combine the
// concurrently-written values, and returns the counted steps. The
// final accumulation of the per-cell reductions into the cells is one
// EREW read-modify-write batch over the m cells.
func SimulatePlusWrite(p int, cells []int64, addrs []int, vals []int64, seed int64) (int64, error) {
	if len(addrs) != len(vals) {
		return 0, fmt.Errorf("pram: %d addrs, %d vals", len(addrs), len(vals))
	}
	res, err := RunMultireduce(p, vals, addrs, len(cells), 0, seed)
	if err != nil {
		return 0, err
	}
	for b := range cells {
		cells[b] += res.Reductions[b]
	}
	steps := res.Stats.TotalSteps()
	if len(cells) > 0 {
		steps += int64((len(cells) + p - 1) / p) // the accumulation batch
	}
	return steps, nil
}

// SlowdownPoint is one row of the §1.2 experiment: problem size
// n = alpha^2 * p^2 on p processors, the steps the ARB simulation
// used, the n/p step floor any p-processor algorithm needs for n work,
// and their ratio (the simulation's slowdown factor, which the theorem
// says is O(1) for alpha >= 1).
type SlowdownPoint struct {
	Alpha    int
	N        int
	Steps    int64
	Floor    int64
	Slowdown float64
}

// MeasureSlowdown runs the PLUS-on-ARB simulation for each alpha and
// reports the slowdown against the work-based step floor.
func MeasureSlowdown(p int, alphas []int, cellsPerProc int, seed int64) ([]SlowdownPoint, error) {
	var out []SlowdownPoint
	mCells := p * cellsPerProc
	if mCells < 1 {
		mCells = 1
	}
	rng := newSplitMix(uint64(seed))
	for _, a := range alphas {
		n := a * a * p * p
		addrs := make([]int, n)
		vals := make([]int64, n)
		for i := range addrs {
			addrs[i] = int(rng.next() % uint64(mCells))
			vals[i] = int64(rng.next()%100) + 1
		}
		cells := make([]int64, mCells)
		steps, err := SimulatePlusWrite(p, cells, addrs, vals, seed)
		if err != nil {
			return nil, err
		}
		floor := int64((n + p - 1) / p)
		out = append(out, SlowdownPoint{
			Alpha:    a,
			N:        n,
			Steps:    steps,
			Floor:    floor,
			Slowdown: float64(steps) / float64(floor),
		})
	}
	return out, nil
}

// splitMix is a tiny deterministic generator so this file does not
// depend on math/rand state shared with the ARB winner selection.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed + 0x9e3779b97f4a7c15} }

func (g *splitMix) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
