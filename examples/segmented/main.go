// Segmented demonstrates segmented scans built on multiprefix (the
// paper's §1: "a segmented-scan is simulated by distributing the same
// label to each element in a segment"): running totals that reset at
// segment boundaries, here used for per-trip odometer readings and a
// classic line-offsets computation.
package main

import (
	"fmt"
	"log"

	"multiprefix"
)

func main() {
	// Distances of individual legs; `true` starts a new trip.
	legs := []int64{12, 7, 31, 5, 5, 5, 40, 2}
	trips := []bool{true, false, false, true, false, false, true, false}

	scans, totals, err := multiprefix.SegmentedScan(
		multiprefix.AddInt64, legs, trips, multiprefix.SerialEngine[int64]())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("leg  starts-trip  distance  odometer-at-start")
	for i := range legs {
		fmt.Printf("%3d  %11v  %8d  %d\n", i, trips[i], legs[i], scans[i])
	}
	fmt.Printf("trip totals: %v\n", totals)

	// Line offsets: lengths of lines -> byte offset of each line, the
	// segmented-scan formulation with one segment.
	lineLens := []int64{5, 0, 12, 7}
	one := make([]bool, len(lineLens)) // single segment
	offsets, _, err := multiprefix.SegmentedScan(
		multiprefix.AddInt64, lineLens, one, multiprefix.SerialEngine[int64]())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nline lengths %v -> byte offsets %v\n", lineLens, offsets)

	// Segmented MAX: running maximum that resets per segment.
	vals := []int64{3, 9, 2, -4, 1, 7}
	segs := []bool{true, false, false, true, false, false}
	runMax, segMax, err := multiprefix.SegmentedScan(
		multiprefix.MaxInt64, vals, segs, multiprefix.SerialEngine[int64]())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsegmented running max of %v: %v (per segment: %v)\n", vals, runMax[1:], segMax)
}
