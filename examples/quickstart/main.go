// Quickstart: the multiprefix operation on the example of the paper's
// Figure 1 — values with integer labels, producing per-element running
// sums within each label class plus per-label totals.
package main

import (
	"fmt"
	"log"

	"multiprefix"
)

func main() {
	// Eight values; labels pick which "bucket" each belongs to.
	values := []int64{1, 2, 1, 2, 1, 1, 2, 3}
	labels := []int{1, 1, 2, 1, 2, 1, 2, 1}

	res, err := multiprefix.Compute(multiprefix.AddInt64, values, labels, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("i  label  value  multiprefix (sum of preceding same-label values)")
	for i := range values {
		fmt.Printf("%d  %5d  %5d  %d\n", i, labels[i], values[i], res.Multi[i])
	}
	fmt.Println("\nlabel  reduction (total per label)")
	for k, r := range res.Reductions {
		fmt.Printf("%5d  %d\n", k, r)
	}

	// Any associative operator works, and combines happen in vector
	// order, so non-commutative operators are safe:
	words := []string{"to", "be", "or", "not", "to", "be"}
	who := []int{0, 1, 0, 1, 0, 1}
	r2, err := multiprefix.Compute(multiprefix.ConcatString, words, who, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcat by speaker: %q\n", r2.Reductions)
}
