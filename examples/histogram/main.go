// Histogram demonstrates the multireduce operation as histogramming —
// the "Vector Update Loop" workload of the paper's §1 — by computing
// word-length and first-letter frequencies over a text, and compares
// the multireduce against a plain loop.
package main

import (
	"fmt"
	"log"
	"strings"

	"multiprefix"
)

const gettysburg = `Four score and seven years ago our fathers brought forth on this
continent a new nation conceived in Liberty and dedicated to the proposition
that all men are created equal Now we are engaged in a great civil war testing
whether that nation or any nation so conceived and so dedicated can long endure`

func main() {
	words := strings.Fields(strings.ToLower(gettysburg))

	// First-letter frequency via the public Histogram (multireduce of ones).
	letters := make([]int, len(words))
	for i, w := range words {
		letters[i] = int(w[0] - 'a')
	}
	counts, err := multiprefix.Histogram(letters, 26)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first-letter frequencies:")
	for c := 0; c < 26; c++ {
		if counts[c] > 0 {
			fmt.Printf("  %c: %s (%d)\n", 'a'+c, strings.Repeat("#", int(counts[c])), counts[c])
		}
	}

	// Weighted multireduce: total characters contributed per length class.
	lengths := make([]int, len(words))
	chars := make([]int64, len(words))
	maxLen := 0
	for i, w := range words {
		lengths[i] = len(w)
		chars[i] = int64(len(w))
		if len(w) > maxLen {
			maxLen = len(w)
		}
	}
	totals, err := multiprefix.Reduce(multiprefix.AddInt64, chars, lengths, maxLen+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncharacters contributed by words of each length:")
	for l, t := range totals {
		if t > 0 {
			fmt.Printf("  len %2d: %d chars\n", l, t)
		}
	}

	// The multiprefix sums give each word its running index among
	// same-initial words — fetch-and-op without locks.
	ranks, _, err := multiprefix.Enumerate(letters, 26, multiprefix.SerialEngine[int64]())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst three words starting with each of a, c, n:")
	for _, target := range []int{0, 2, 13} {
		var picks []string
		for i, w := range words {
			if letters[i] == target && ranks[i] < 3 {
				picks = append(picks, w)
			}
		}
		fmt.Printf("  %c: %v\n", 'a'+target, picks)
	}
}
