// Integersort demonstrates the stable integer-ranking algorithm of the
// paper's Figure 11 on NAS Integer Sort keys: two multiprefix calls
// rank n keys in O(n + m) work.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"multiprefix"
	"multiprefix/internal/intsort"
)

func main() {
	n := flag.Int("n", 1<<20, "number of keys")
	maxKey := flag.Int("maxkey", 1<<16, "key range [0, maxkey)")
	flag.Parse()

	fmt.Printf("generating %d NAS IS keys in [0, %d) ...\n", *n, *maxKey)
	keys := intsort.NASKeys(*n, *maxKey, 0)

	start := time.Now()
	ranks, err := multiprefix.Rank(keys, *maxKey)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if err := intsort.VerifyRanks(keys, ranks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranked and verified in %v (%.1f ns/key)\n",
		elapsed, float64(elapsed.Nanoseconds())/float64(*n))

	sorted, err := multiprefix.Sort(keys, *maxKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first keys after sorting: %v\n", sorted[:min(8, len(sorted))])
	fmt.Printf("last  keys after sorting: %v\n", sorted[max(0, len(sorted)-8):])

	// Stability demonstration on a tiny input: equal keys keep order.
	small := []int32{3, 1, 3, 1}
	r, err := multiprefix.Rank(small, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stability: keys %v -> ranks %v (first 3 precedes second 3)\n", small, r)
}
