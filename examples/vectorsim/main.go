// Vectorsim drives the simulated CRAY Y-MP directly: it runs the
// vectorized multiprefix on inputs of the user's size, prints the
// per-phase clock breakdown the paper's §4.3 discusses, and shows how
// the same input behaves under heavy, moderate and light bucket loads.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"multiprefix/internal/core"
	"multiprefix/internal/vecmp"
	"multiprefix/internal/vector"
)

func main() {
	n := flag.Int("n", 100000, "element count")
	flag.Parse()

	cfg := vector.DefaultConfig()
	fmt.Printf("simulated machine: VL=%d, %d banks (busy %d clk), %.0f ns clock\n\n",
		cfg.VL, cfg.Banks, cfg.BankBusy, cfg.ClockNS)

	rng := rand.New(rand.NewSource(1))
	values := make([]int64, *n)
	for i := range values {
		values[i] = int64(rng.Intn(100)) + 1
	}

	for _, load := range []struct {
		name    string
		buckets int
	}{
		{"light (one bucket per element)", *n},
		{"moderate (load 16)", *n / 16},
		{"heavy (a single bucket)", 1},
	} {
		if load.buckets < 1 {
			load.buckets = 1
		}
		labels := vecmp.RandomLabels(rng, *n, load.buckets)
		m := vector.New(cfg)
		res, err := vecmp.Multiprefix(m, core.AddInt64, values, labels, load.buckets, vecmp.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fn := float64(*n)
		fmt.Printf("%s — %.1f clk/elt, %.3f simulated ms\n", load.name, m.Cycles()/fn, m.Seconds()*1e3)
		fmt.Printf("  phases (clk/elt): init %.1f  spinetree %.1f  rowsums %.1f  spinesums %.1f  multisums %.1f  reduce %.1f\n",
			res.Phases.Init/fn, res.Phases.Spinetree/fn, res.Phases.Rowsums/fn,
			res.Phases.Spinesums/fn, res.Phases.Multisums/fn, res.Phases.Reduce/fn)
		fmt.Printf("  grid: %d rows x %d columns (row length avoids bank multiples)\n", res.Grid.Rows, res.Grid.P)
		fmt.Printf("  instruction-kind breakdown (cycles):\n")
		for _, line := range splitLines(m.Breakdown(), 4) {
			fmt.Printf("    %s\n", line)
		}
		fmt.Println()
	}
	fmt.Println("note how the extremes trade off: heavy load inflates SPINETREE")
	fmt.Println("(hot-spot scatter) but collapses SPINESUMS (all-false strips exit")
	fmt.Println("early), while light load pays dummy-location contention in")
	fmt.Println("SPINESUMS — the §4.3 story, with totals within a small factor.")
}

func splitLines(s string, max int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < max; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
