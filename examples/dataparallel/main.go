// Dataparallel writes three small programs in the scan-vector style
// the paper's conclusion advocates — no explicit loops over elements
// or goroutines in user code, only composable primitives with
// multiprefix among them.
package main

import (
	"fmt"
	"log"

	"multiprefix/internal/core"
	"multiprefix/internal/dpl"
)

func main() {
	// 1. Split-radix sort (Blelloch's classic): one stable Split per bit.
	keys := []int64{170, 45, 75, 90, 2, 802, 24, 66}
	sorted, err := dpl.SplitRadixSort(keys, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split-radix sort: %v\n             ->   %v\n\n", keys, sorted)

	// 2. The paper's Figure 11 rank sort, in six primitive calls.
	ranked, err := dpl.RankSort(keys, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiprefix rank sort -> %v\n\n", ranked)

	// 3. Segment-parallel quicksort: every partition splits at once,
	//    with multiprefix supplying the stable in-class ranks.
	qs, rounds, err := dpl.QuickSortRounds(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented quicksort   -> %v  (%d rounds)\n\n", qs, rounds)

	// 4. Average points per player from an interleaved game log —
	//    a multireduce over labels plus elementwise division.
	players := []int{0, 1, 0, 2, 1, 0, 2, 2}
	points := []int64{7, 3, 2, 11, 5, 1, 0, 4}
	totals, err := dpl.MultiReduce(core.AddInt64, points, players, 3)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := dpl.MultiReduce(core.AddInt64, dpl.Dist(int64(1), len(players)), players, 3)
	if err != nil {
		log.Fatal(err)
	}
	averages, err := dpl.Map2(totals, counts, func(t, c int64) float64 {
		if c == 0 {
			return 0
		}
		return float64(t) / float64(c)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("player  games  points  average")
	for p := range totals {
		fmt.Printf("%6d  %5d  %6d  %7.2f\n", p, counts[p], totals[p], averages[p])
	}

	// 5. Running score per player, in reading order: the multiprefix
	//    sums themselves.
	res, err := dpl.MultiPrefix(core.AddInt64, points, players, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nevent  player  points  score-before")
	for i := range points {
		fmt.Printf("%5d  %6d  %6d  %12d\n", i, players[i], points[i], res.Multi[i])
	}
}
