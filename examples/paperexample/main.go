// Paperexample walks the worked example of the paper's §2.2
// (Figures 5-7 and 9): nine elements of value 1, all with the same
// label, arranged 3x3. It prints the spine-pointer evolution during
// the SPINETREE phase, the spinetree in its single-integer-vector form
// (Figure 9), and the intermediate sums after each remaining phase.
package main

import (
	"fmt"
	"log"

	"multiprefix/internal/core"
)

func main() {
	const n, m = 9, 4
	values := make([]int64, n)
	labels := make([]int, n)
	for i := range values {
		values[i] = 1
		labels[i] = 1 // the paper's bucket "2", 0-based
	}

	tr, err := core.TraceSpinetree(core.AddInt64, values, labels, m, core.Config{RowLength: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d elements of value 1, all labeled 1, as a %dx%d grid\n",
		n, tr.Grid.Rows, tr.Grid.P)
	fmt.Println("arena layout: buckets 0..3, elements at 4..12 (pivot '|', Figure 8)")

	fmt.Println("\nSPINETREE phase, rows processed top to bottom (Figure 6):")
	for step, spine := range tr.SpineSteps {
		if step == 0 {
			fmt.Println("\ninitial state (buckets point at themselves, Figure 5):")
		} else {
			fmt.Printf("\nafter row %d:\n", tr.Grid.Rows-step)
		}
		fmt.Println(core.FormatSpine(spine, tr.M))
	}

	fmt.Println("\nfinal spinetree as a single integer vector (Figure 9):")
	fmt.Println(core.FormatSpine(tr.Spine, tr.M))
	fmt.Println("\nparent of each element (m+i indexing):")
	for i := 0; i < tr.N; i++ {
		kind := "leaf"
		if tr.IsSpineElement(i) {
			kind = "SPINE element"
		}
		fmt.Printf("  element %d -> arena %d  (%s)\n", i, tr.Parent(i), kind)
	}

	fmt.Println("\nafter ROWSUMS  (each parent holds the sum of its children, Figure 7):")
	fmt.Printf("  rowsum:   %v\n", tr.Rowsum)
	fmt.Println("after SPINESUMS (running prefix along the spine):")
	fmt.Printf("  spinesum: %v\n", tr.Spinesum)
	fmt.Println("after MULTISUMS (the multiprefix enumerates the ones):")
	fmt.Printf("  multi:    %v\n", tr.Multi)
	fmt.Printf("  reductions: %v  (bucket 1 counted all nine elements)\n", tr.Reductions)
}
