// Cg solves a 2-D Poisson problem with the conjugate gradient method,
// using the multireduce-based sparse matrix-vector kernel of the
// paper's Figure 12 — the iterative-methods workload §5.2 motivates,
// where one matrix multiplies many vectors and kernel setup amortizes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"multiprefix/internal/core"
	"multiprefix/internal/sparse"
)

func main() {
	nx := flag.Int("nx", 64, "grid width")
	ny := flag.Int("ny", 64, "grid height")
	tol := flag.Float64("tol", 1e-10, "relative residual tolerance")
	flag.Parse()

	coo, err := sparse.Laplacian2D(*nx, *ny)
	if err != nil {
		log.Fatal(err)
	}
	csr, err := coo.ToCSR()
	if err != nil {
		log.Fatal(err)
	}
	n := coo.NumRows
	fmt.Printf("2-D Laplacian, %dx%d grid: order %d, %d nonzeros (density %.5f)\n",
		*nx, *ny, n, coo.NNZ(), sparse.Density(coo))

	// Manufactured solution: a smooth bump; b = A * want.
	want := make([]float64, n)
	for j := 0; j < *ny; j++ {
		for i := 0; i < *nx; i++ {
			x := float64(i) / float64(*nx-1)
			y := float64(j) / float64(*ny-1)
			want[j**nx+i] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	b, err := sparse.MulCSR(csr, want)
	if err != nil {
		log.Fatal(err)
	}

	solve := func(name string, mul sparse.MulFunc) {
		start := time.Now()
		x, iters, err := sparse.CG(mul, b, *tol, 0)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		worst := 0.0
		for i := range x {
			if d := math.Abs(x[i] - want[i]); d > worst {
				worst = d
			}
		}
		fmt.Printf("%-22s %4d iterations, %8v, max error %.2e\n",
			name, iters, time.Since(start).Round(time.Microsecond), worst)
	}
	solve("CSR kernel", func(x []float64) ([]float64, error) { return sparse.MulCSR(csr, x) })
	solve("multireduce kernel", func(x []float64) ([]float64, error) { return sparse.MulCOOChunked(coo, x, 0) })

	// The planned kernel is the §5.2.1 point of this workload: the
	// multireduce setup depends only on the matrix's row structure, so
	// it is paid once and every CG iteration runs the evaluation phase
	// alone, allocation-free.
	plan, err := sparse.NewSpMVPlan(coo, "chunked", core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	solve("multireduce plan", plan.Mul)
}
