// Spmv multiplies a sparse matrix by a dense vector the way the
// paper's Figure 12 does: elementwise products followed by a
// multireduce keyed on the row index. It cross-checks the result
// against the classic CSR kernel and reports timings.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"multiprefix"
	"multiprefix/internal/sparse"
)

func main() {
	order := flag.Int("order", 5000, "matrix order")
	density := flag.Float64("density", 0.001, "nonzero density")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	coo, err := sparse.RandomUniform(rng, *order, *density)
	if err != nil {
		log.Fatal(err)
	}
	x := sparse.RandomVector(rng, *order)
	fmt.Printf("A: %dx%d, %d nonzeros (density %.4f)\n",
		coo.NumRows, coo.NumCols, coo.NNZ(), sparse.Density(coo))

	// The multiprefix formulation: products, then multireduce by row.
	start := time.Now()
	products := make([]float64, coo.NNZ())
	rows := make([]int, coo.NNZ())
	for k := range coo.Val {
		products[k] = coo.Val[k] * x[coo.Col[k]]
		rows[k] = int(coo.Row[k])
	}
	y, err := multiprefix.Reduce(multiprefix.AddFloat64, products, rows, coo.NumRows)
	if err != nil {
		log.Fatal(err)
	}
	mpTime := time.Since(start)

	// Reference: row-major CSR.
	csr, err := coo.ToCSR()
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	yRef, err := sparse.MulCSR(csr, x)
	if err != nil {
		log.Fatal(err)
	}
	csrTime := time.Since(start)

	worst := 0.0
	for r := range y {
		if d := math.Abs(y[r] - yRef[r]); d > worst {
			worst = d
		}
	}
	fmt.Printf("multireduce SpMV: %v    CSR SpMV: %v\n", mpTime, csrTime)
	fmt.Printf("max |y_mp - y_csr| = %.3g (floating-point reassociation only)\n", worst)
	fmt.Printf("y[0..4] = %.4f\n", y[:min(5, len(y))])
}
