// Command pramsim runs the theoretical-model experiments on the
// simulated PRAM: the step/work complexity accounting of paper §3 and
// the CRCW-PLUS-on-CRCW-ARB simulation of §1.2. The simulator enforces
// the paper's policy discipline — the SPINETREE phase runs under
// CRCW-ARB, everything after it under strict EREW — so a successful
// run is itself a check of Theorems 1-2.
//
// Usage:
//
//	pramsim [-full]
package main

import (
	"flag"
	"log"
	"os"

	"multiprefix/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pramsim: ")
	full := flag.Bool("full", false, "larger sizes and processor counts")
	flag.Parse()
	if err := exp.RunByIDs(os.Stdout, "S3,S12", *full); err != nil {
		log.Fatal(err)
	}
}
