// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments [-run T1,T2,...|all] [-full] [-o report.txt]
//
// Each experiment prints its table or figure alongside the values the
// paper reports. -full selects paper-scale inputs (the NAS class A
// problem, order-15000 matrices, n=10^6 sweeps) and can take minutes;
// the default reduced scale finishes in seconds and preserves every
// qualitative conclusion.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"multiprefix/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	full := flag.Bool("full", false, "paper-scale inputs (slow)")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %-12s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = io.MultiWriter(os.Stdout, f)
	}
	if err := exp.RunByIDs(w, *run, *full); err != nil {
		log.Fatal(err)
	}
}
