// Command mpd is the multiprefix daemon: a long-running HTTP/JSON
// service over the backend registry (internal/server). It exposes
//
//	POST /v1/multiprefix        full multiprefix of one value vector
//	POST /v1/multireduce        per-label reductions only
//	POST /v1/multiprefix/batch  many vectors against one label set
//	POST /v1/multireduce/batch  batch form of the reductions
//	POST /v1/update             bind/mutate a plan's resident values
//	POST /v1/query              point reads over resident values
//	GET  /v1/stats              atomic counter snapshot
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               process liveness (stays 200 during drain)
//	GET  /readyz                traffic readiness (503 while warming or draining)
//
// Robustness is the point: admission control sheds load with 429
// before work lands on the engine teams, per-request deadlines
// propagate into the engines, concurrent requests sharing a plan are
// coalesced into fused batch rounds, and engine failures walk a
// degradation ladder (fused batch -> per-vector isolation -> serial
// retry -> typed error) so one poisoned request never takes out its
// co-batch. SIGTERM/SIGINT drains: readiness flips, new compute
// requests get 503 + Retry-After, in-flight requests finish (bounded
// by -drain-timeout), then the process exits.
//
// The -chaos flag arms deterministic fault injection (internal/fault)
// in production traffic shape: "panic=200,cancel=300,seed=7" makes
// every 200th request panic inside one engine combine and every 300th
// arrive already cancelled, which exercises the whole ladder end to
// end. make check-service boots mpd with chaos armed and asserts the
// ladder holds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"multiprefix/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8722", "listen address (host:port; :0 picks a free port)")
		backendName  = flag.String("backend", "auto", "default plan backend: auto, serial, sorted, sharded, chunked, parallel, spinetree")
		workers      = flag.Int("workers", 0, "engine workers per plan (0 = GOMAXPROCS)")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently admitted compute requests (0 = 4x GOMAXPROCS); excess is shed with 429")
		maxBody      = flag.Int64("max-body", 0, "max request body bytes (0 = 64 MiB)")
		maxN         = flag.Int("max-n", 0, "max elements per request (0 = 2^21)")
		maxM         = flag.Int("max-m", 0, "max label-space size per request (0 = 2^18)")
		deadline     = flag.Duration("deadline", 0, "default per-request compute deadline (0 = 2s)")
		maxDeadline  = flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = 30s)")
		window       = flag.Duration("coalesce-window", 0, "batch-coalescing collection window (0 = 200us, negative = no wait)")
		batchCap     = flag.Int("batch-cap", 0, "max request vectors fused into one engine round (0 = 16)")
		planCache    = flag.Int("plan-cache", 0, "plan cache capacity, LRU beyond it (0 = 64)")
		retryAfter   = flag.Duration("retry-after", 0, "Retry-After hint on 429/503 (0 = 1s)")
		clientRPS    = flag.Float64("client-rps", 0, "per-client fairness quota in requests/s, keyed by X-Client-ID (0 = no per-client limit)")
		clientBurst  = flag.Int("client-burst", 0, "per-client token-bucket burst (0 = 2x -client-rps)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "max time to wait for in-flight requests on SIGTERM")
		chaos        = flag.String("chaos", "", `deterministic fault injection: "panic=N,cancel=N,seed=S" (0 or absent disables a point)`)
		warm         = flag.String("warm", "", "plan-cache warm file: pre-build persisted plans before readiness, re-persist the live key set on drain")
	)
	flag.Parse()

	opts := server.Options{
		Backend:         *backendName,
		Workers:         *workers,
		MaxInFlight:     *maxInFlight,
		MaxBody:         *maxBody,
		MaxN:            *maxN,
		MaxM:            *maxM,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CoalesceWindow:  *window,
		BatchCap:        *batchCap,
		PlanCacheCap:    *planCache,
		RetryAfter:      *retryAfter,
		ClientRPS:       *clientRPS,
		ClientBurst:     *clientBurst,
	}
	if err := parseChaos(*chaos, &opts); err != nil {
		log.Fatalf("mpd: bad -chaos: %v", err)
	}

	srv := server.New(opts)
	hs := &http.Server{Handler: srv.Handler()}

	// Warm before readiness: /readyz stays 503 {"status":"warming"}
	// while the previous process's plan set pre-builds, so a load
	// balancer never routes traffic into a cold cache.
	if *warm != "" {
		srv.BeginWarm()
		go func() {
			n, err := srv.WarmFromFile(*warm)
			if err != nil {
				log.Printf("mpd: warm: %v", err)
				return
			}
			log.Printf("mpd: warm: %d plans pre-built from %s", n, *warm)
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mpd: listen %s: %v", *addr, err)
	}
	log.Printf("mpd: serving on %s (backend=%s)", ln.Addr(), *backendName)
	if opts.ChaosPanicEvery > 0 || opts.ChaosCancelEvery > 0 {
		log.Printf("mpd: chaos armed: panic every %d, cancel every %d, seed %d",
			opts.ChaosPanicEvery, opts.ChaosCancelEvery, opts.ChaosSeed)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("mpd: %s: draining (in-flight finishes, new work is rejected)", sig)
	case err := <-serveErr:
		log.Fatalf("mpd: serve: %v", err)
	}

	// Drain first so /readyz flips and compute returns 503 before the
	// listener dies: a load balancer stops routing here while requests
	// already admitted run to completion under Shutdown.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mpd: shutdown: %v", err)
	}
	// Persist the live plan key set after in-flight traffic settles but
	// before Close empties the cache, so the next process can warm it.
	if *warm != "" {
		if err := srv.PersistPlansToFile(*warm); err != nil {
			log.Printf("mpd: persist plans: %v", err)
		} else {
			log.Printf("mpd: persisted plan key set to %s", *warm)
		}
	}
	srv.Close()
	st := srv.Stats()
	log.Printf("mpd: drained: %d requests, %d ok, %d errors, %d shed, %d fused rounds, %d serial fallbacks",
		st.Requests, st.OK, st.Errors, st.Shed, st.FusedRounds, st.SerialFallbacks)
}

// parseChaos fills the chaos fields of opts from a spec like
// "panic=200,cancel=300,seed=7". Every key is optional.
func parseChaos(spec string, opts *server.Options) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("%q is not key=value", part)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("%q: %w", part, err)
		}
		switch k {
		case "panic":
			opts.ChaosPanicEvery = int(n)
		case "cancel":
			opts.ChaosCancelEvery = int(n)
		case "seed":
			opts.ChaosSeed = n
		default:
			return fmt.Errorf("unknown key %q (want panic, cancel or seed)", k)
		}
	}
	return nil
}
