// Command rowlen runs the row-length ablation of paper §4.4: total
// time as a function of the grid row length, showing the flat optimum
// near sqrt(n) and the spikes at memory-bank multiples.
//
// Usage:
//
//	rowlen [-full]
package main

import (
	"flag"
	"log"
	"os"

	"multiprefix/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rowlen: ")
	full := flag.Bool("full", false, "sweep at n = 2^20")
	flag.Parse()
	if err := exp.RunByIDs(os.Stdout, "S44", *full); err != nil {
		log.Fatal(err)
	}
}
