// Command mpload is the service load generator: the ssbench
// counterpart for mpd. It drives concurrent HTTP clients against the
// daemon's compute endpoints for a fixed duration per traffic mix and
// reports QPS, latency (mean/p50/p99) and error counts per mix as
// machine-readable JSON — the committed BENCH_service.json at the
// repo root is its reference snapshot (`make bench-service`
// regenerates it).
//
// With -url it targets a running daemon; without, it boots an
// in-process server on a loopback listener so a benchmark run is one
// command. Each worker rotates through a small set of distinct label
// vectors (-plans), so the run exercises the plan cache's hit path
// and, with many workers on few plans, the cross-request batch
// coalescer.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"multiprefix/internal/server"
)

// MixResult is one traffic mix's measurement.
type MixResult struct {
	// Mix names the traffic shape: "reduce" (multireduce only),
	// "multi" (full multiprefix only), or "mixed" (alternating).
	Mix string `json:"mix"`
	// Endpoint is the path(s) driven.
	Endpoint string `json:"endpoint"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`
	Errors   int    `json:"errors"`
	// Shed counts 429/503 responses (admission control working as
	// designed under overload; they are not in Errors).
	Shed       int     `json:"shed"`
	DurSec     float64 `json:"dur_sec"`
	QPS        float64 `json:"qps"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	ElemPerSec float64 `json:"elem_per_sec"`
	// CoalescedAvg is the mean fused-round size observed in responses
	// (1 = every request ran alone).
	CoalescedAvg float64 `json:"coalesced_avg"`
	// Fallbacks counts responses served by the degradation ladder's
	// serial rung (nonzero only under chaos).
	Fallbacks int `json:"fallbacks"`
}

// Report is the whole run.
type Report struct {
	Host       string      `json:"host"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Backend    string      `json:"backend"`
	Op         string      `json:"op"`
	N          int         `json:"n"`
	M          int         `json:"m"`
	Plans      int         `json:"plans"`
	Clients    int         `json:"clients"`
	Chaos      string      `json:"chaos,omitempty"`
	Mixes      []MixResult `json:"mixes"`
}

type response struct {
	Multi      []int64 `json:"multi"`
	Reductions []int64 `json:"reductions"`
	Coalesced  int     `json:"coalesced"`
	Fallback   string  `json:"fallback"`
	Error      *struct {
		Kind string `json:"kind"`
	} `json:"error"`
}

func main() {
	var (
		url     = flag.String("url", "", "base URL of a running mpd (empty = boot an in-process server)")
		clients = flag.Int("c", 2*runtime.GOMAXPROCS(0), "concurrent client workers")
		dur     = flag.Duration("dur", 3*time.Second, "measurement duration per mix")
		n       = flag.Int("n", 1<<16, "elements per request")
		m       = flag.Int("m", 256, "label-space size")
		plans   = flag.Int("plans", 4, "distinct label vectors rotated through (plan-cache working set)")
		backend = flag.String("backend", "auto", "backend requested per request")
		op      = flag.String("op", "sum", "operator requested per request")
		mixes   = flag.String("mix", "reduce,multi", "comma-separated mixes to run: reduce, multi, mixed")
		seed    = flag.Int64("seed", 1, "input generation seed")
		chaos   = flag.String("chaos", "", "chaos spec for the in-process server (ignored with -url)")
		out     = flag.String("o", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()

	base := *url
	if base == "" {
		opts := server.Options{Backend: *backend}
		if err := parseChaos(*chaos, &opts); err != nil {
			log.Fatalf("mpload: bad -chaos: %v", err)
		}
		srv := server.New(opts)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("mpload: listen: %v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() { hs.Close(); srv.Close() }()
		base = "http://" + ln.Addr().String()
		log.Printf("mpload: in-process server on %s", base)
	}
	base = strings.TrimRight(base, "/")

	// Pre-encode one request body per (plan, kind): the generator must
	// not spend its measurement window in JSON marshalling.
	rng := rand.New(rand.NewSource(*seed))
	bodies := make([][]byte, *plans)
	for p := 0; p < *plans; p++ {
		labels := make([]int, *n)
		values := make([]int64, *n)
		for i := range labels {
			labels[i] = rng.Intn(*m)
			values[i] = int64(rng.Intn(100))
		}
		b, err := json.Marshal(map[string]any{
			"op": *op, "backend": *backend, "m": *m,
			"labels": labels, "values": values,
		})
		if err != nil {
			log.Fatalf("mpload: marshal: %v", err)
		}
		bodies[p] = b
	}

	rep := Report{
		Host:       hostname(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Backend:    *backend,
		Op:         *op,
		N:          *n,
		M:          *m,
		Plans:      *plans,
		Clients:    *clients,
		Chaos:      *chaos,
	}
	for _, mix := range strings.Split(*mixes, ",") {
		mix = strings.TrimSpace(mix)
		if mix == "" {
			continue
		}
		r := runMix(base, mix, bodies, *clients, *dur, *n)
		rep.Mixes = append(rep.Mixes, r)
		log.Printf("mpload: %-6s %8.0f qps  mean %6.2fms  p99 %6.2fms  ok %d  err %d  shed %d  coalesced %.2f",
			r.Mix, r.QPS, r.MeanMS, r.P99MS, r.OK, r.Errors, r.Shed, r.CoalescedAvg)
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("mpload: write %s: %v", *out, err)
	}
	log.Printf("mpload: wrote %s", *out)
}

// runMix drives one traffic mix for dur and aggregates the outcome.
func runMix(base, mix string, bodies [][]byte, clients int, dur time.Duration, n int) MixResult {
	endpoint := func(i int) string {
		switch mix {
		case "reduce":
			return base + "/v1/multireduce"
		case "multi":
			return base + "/v1/multiprefix"
		default: // mixed: alternate per request
			if i%2 == 0 {
				return base + "/v1/multireduce"
			}
			return base + "/v1/multiprefix"
		}
	}

	type workerStats struct {
		lat                      []time.Duration
		ok, errs, shed, coal, fb int
	}
	stats := make([]workerStats, clients)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			ws := &stats[w]
			for i := 0; time.Now().Before(deadline); i++ {
				body := bodies[(w+i)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(endpoint(w+i), "application/json", bytes.NewReader(body))
				if err != nil {
					ws.errs++
					continue
				}
				var r response
				derr := json.NewDecoder(resp.Body).Decode(&r)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ws.lat = append(ws.lat, time.Since(t0))
				switch {
				case resp.StatusCode == http.StatusOK && derr == nil:
					ws.ok++
					ws.coal += r.Coalesced
					if r.Fallback != "" {
						ws.fb++
					}
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					ws.shed++
				default:
					ws.errs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := MixResult{
		Mix:      mix,
		Endpoint: strings.TrimPrefix(endpoint(0), base),
		DurSec:   elapsed.Seconds(),
	}
	if mix == "mixed" {
		res.Endpoint += "|" + strings.TrimPrefix(endpoint(1), base)
	}
	var all []time.Duration
	for i := range stats {
		ws := &stats[i]
		all = append(all, ws.lat...)
		res.OK += ws.ok
		res.Errors += ws.errs
		res.Shed += ws.shed
		res.Fallbacks += ws.fb
		res.CoalescedAvg += float64(ws.coal)
	}
	res.Requests = res.OK + res.Errors + res.Shed
	if res.OK > 0 {
		res.CoalescedAvg /= float64(res.OK)
	}
	res.QPS = float64(res.Requests) / elapsed.Seconds()
	res.ElemPerSec = float64(res.OK) * float64(n) / elapsed.Seconds()
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		res.MeanMS = float64(sum.Milliseconds()) / float64(len(all))
		res.P50MS = float64(all[len(all)/2].Microseconds()) / 1000
		res.P99MS = float64(all[len(all)*99/100].Microseconds()) / 1000
	}
	return res
}

func parseChaos(spec string, opts *server.Options) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("%q is not key=value", part)
		}
		var n int64
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			return fmt.Errorf("%q: %w", part, err)
		}
		switch k {
		case "panic":
			opts.ChaosPanicEvery = int(n)
		case "cancel":
			opts.ChaosCancelEvery = int(n)
		case "seed":
			opts.ChaosSeed = n
		default:
			return fmt.Errorf("unknown key %q", k)
		}
	}
	return nil
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "unknown"
	}
	return h
}
