// Command spmv runs the sparse matrix-vector multiply comparisons of
// paper Tables 2, 4 and 5 on the simulated vector machine, or times a
// single case in detail.
//
// Usage:
//
//	spmv                          # the full Table 2/4 grid (reduced scale)
//	spmv -full                    # all orders up to 15000 (slow)
//	spmv -circuit                 # the Table 5 circuit matrices
//	spmv -order 5000 -density 0.001 -evals 50   # one case, amortization view
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"multiprefix/internal/exp"
	"multiprefix/internal/sparse"
	"multiprefix/internal/stats"
	"multiprefix/internal/vector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmv: ")
	full := flag.Bool("full", false, "paper-scale grid (orders to 15000)")
	circuit := flag.Bool("circuit", false, "run the Table 5 circuit cases instead")
	order := flag.Int("order", 0, "run a single case with this order")
	density := flag.Float64("density", 0.001, "density for -order")
	evals := flag.Int("evals", 1, "evaluations per setup for -order (amortization)")
	seed := flag.Int64("seed", 1, "matrix generator seed")
	load := flag.String("load", "", "time the kernels on a matrix file (see sparse.WriteCOO format)")
	save := flag.String("save", "", "with -order: also save the generated matrix to this file")
	flag.Parse()

	switch {
	case *load != "":
		runFile(*load, *evals, *seed)
	case *order > 0:
		if *save != "" {
			saveGenerated(*order, *density, *seed, *save)
		}
		runSingle(*order, *density, *evals, *seed)
	case *circuit:
		if err := exp.RunByIDs(os.Stdout, "T5", *full); err != nil {
			log.Fatal(err)
		}
	default:
		if err := exp.RunByIDs(os.Stdout, "T2,T4", *full); err != nil {
			log.Fatal(err)
		}
	}
}

func saveGenerated(order int, density float64, seed int64, path string) {
	rng := rand.New(rand.NewSource(seed))
	coo, err := sparse.RandomUniform(rng, order, density)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sparse.WriteCOO(f, coo); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %dx%d matrix (%d nnz) to %s\n\n", coo.NumRows, coo.NumCols, coo.NNZ(), path)
}

func runFile(path string, evals int, seed int64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	coo, err := sparse.ReadCOO(f)
	if err != nil {
		log.Fatal(err)
	}
	cfg := vector.DefaultConfig()
	csr, err := coo.ToCSR()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	x := sparse.RandomVector(rng, coo.NumCols)
	resCSR, err := sparse.VecCSR(cfg, csr, x, evals)
	if err != nil {
		log.Fatal(err)
	}
	resJD, err := sparse.VecJD(cfg, csr, x, evals)
	if err != nil {
		log.Fatal(err)
	}
	resMP, err := sparse.VecMP(cfg, coo, x, evals)
	if err != nil {
		log.Fatal(err)
	}
	ms := func(c float64) float64 { return sparse.Seconds(c, cfg) * 1e3 }
	fmt.Printf("%s: %dx%d, %d nnz, %d evaluation(s)\n\n", path, coo.NumRows, coo.NumCols, coo.NNZ(), evals)
	t := stats.NewTable("kernel", "setup ms", "eval ms", "total ms")
	t.AddRow("CSR", 0, ms(resCSR.Times.EvalCycles), ms(resCSR.Times.TotalCycles(evals)))
	t.AddRow("Jagged Diagonal", ms(resJD.Times.SetupCycles), ms(resJD.Times.EvalCycles), ms(resJD.Times.TotalCycles(evals)))
	t.AddRow("Multiprefix", ms(resMP.Times.SetupCycles), ms(resMP.Times.EvalCycles), ms(resMP.Times.TotalCycles(evals)))
	fmt.Print(t.String())
}

func runSingle(order int, density float64, evals int, seed int64) {
	cfg := vector.DefaultConfig()
	row, err := sparse.RunUniformCase(cfg, order, density, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order %d, density %.4g, nnz %d, %d evaluation(s)\n\n",
		row.Order, row.Density, row.NNZ, evals)
	k := float64(evals)
	t := stats.NewTable("kernel", "setup ms", "eval ms", "total ms (setup + k evals)")
	t.AddRow("CSR", row.SetupCSR, row.EvalCSR, row.SetupCSR+k*row.EvalCSR)
	t.AddRow("Jagged Diagonal", row.SetupJD, row.EvalJD, row.SetupJD+k*row.EvalJD)
	t.AddRow("Multiprefix", row.SetupMP, row.EvalMP, row.SetupMP+k*row.EvalMP)
	fmt.Print(t.String())
	fmt.Println("\nwith many evaluations the JD setup amortizes (iterative solvers);")
	fmt.Println("for a single multiply the multiprefix kernel wins on sparse systems (§5.2.1).")
}
