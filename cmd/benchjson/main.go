// Command benchjson measures the multiprefix engines — unpooled
// generic baseline, unpooled fast-path, and pooled fast-path — across
// input sizes, plus the unified backend registry's "plan once, run
// many" pipeline against the matching one-shot Compute, and writes a
// machine-readable JSON snapshot (ns/op, allocs/op, ns/elem per
// engine × size, plan-reuse speedups per backend, and the simulated
// vectorized engine's clocks per element). The committed
// BENCH_engines.json at the repo root is the reference snapshot;
// `make bench-json` regenerates it. The -backend flag restricts the
// plan-reuse section to a comma-separated list of registry names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"multiprefix/internal/backend"
	"multiprefix/internal/core"
	"multiprefix/internal/vecmp"
	"multiprefix/internal/vector"
)

// Entry is one engine × variant × size measurement.
type Entry struct {
	Engine      string  `json:"engine"`
	Variant     string  `json:"variant"` // generic | fast | pooled
	N           int     `json:"n"`
	M           int     `json:"m"`
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerElem   float64 `json:"ns_per_elem"`
}

// VecEntry is one simulated vectorized measurement, in the paper's
// clocks-per-element currency.
type VecEntry struct {
	Kernel     string  `json:"kernel"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	ClkPerElem float64 `json:"clk_per_elem"`
}

// PlanEntry compares one backend's one-shot Compute against a Plan
// built once and Run repeatedly on the same shape.
type PlanEntry struct {
	Backend        string  `json:"backend"`
	N              int     `json:"n"`
	M              int     `json:"m"`
	NsPerOpOneshot float64 `json:"ns_per_op_oneshot"`
	AllocsOneshot  float64 `json:"allocs_per_op_oneshot"`
	NsPerOpPlanRun float64 `json:"ns_per_op_plan_run"`
	AllocsPlanRun  float64 `json:"allocs_per_op_plan_run"`
	Speedup        float64 `json:"speedup"`
}

// SortedEntry compares the planned sorted engine against the pooled
// serial bucket pass on the label-heavy shape where the §6 analysis
// predicts the sorted layout wins (bucket array beyond cache). The
// ratio is recorded honestly: on hosts whose last-level cache holds
// the whole bucket array the serial pass stays ahead.
type SortedEntry struct {
	N              int     `json:"n"`
	M              int     `json:"m"`
	Workers        int     `json:"workers"`
	NsSerialPooled float64 `json:"ns_per_op_serial_pooled"`
	NsSortedPlan   float64 `json:"ns_per_op_sorted_plan"`
	Speedup        float64 `json:"speedup"`
}

// TiledEntry compares, at one (n, m) shape, the pooled serial bucket
// pass against the planned sorted scan with tiling disabled (tile
// budget above the working set) and with the calibrated tile budget.
// The tiled column is the cache-tiled interleaved kernel this snapshot
// pins; tiled vs untiled isolates the kernel rewrite from the layout.
// TiledEngaged records whether the calibrated plan actually tiled —
// short average segments (below window/256 elements) hold the plan on
// the untiled path, and then both sorted columns time the same code
// and their ratio only bounds run-to-run noise.
type TiledEntry struct {
	N               int     `json:"n"`
	M               int     `json:"m"`
	Workers         int     `json:"workers"`
	TiledEngaged    bool    `json:"tiled_engaged"`
	NsSerialPooled  float64 `json:"ns_per_op_serial_pooled"`
	NsSortedUntiled float64 `json:"ns_per_op_sorted_untiled"`
	NsSortedTiled   float64 `json:"ns_per_op_sorted_tiled"`
	TiledVsUntiled  float64 `json:"tiled_vs_untiled_speedup"`
	TiledVsSerial   float64 `json:"tiled_vs_serial_speedup"`
}

// ShardEntry compares the sharded backend at S = GOMAXPROCS shards
// against the single-shard sorted plan on the same shape — the
// shard-scaling headline. IdealFraction is Speedup / Shards: 1.0 is
// perfect linear scaling, and the carry exchange's ⌈log₂S⌉ barrier
// rounds plus the second full pass bound how close a real host gets.
type ShardEntry struct {
	N              int     `json:"n"`
	M              int     `json:"m"`
	Shards         int     `json:"shards"`
	Rounds         int     `json:"rounds"`
	NsSortedSingle float64 `json:"ns_per_op_sorted_single"`
	NsSharded      float64 `json:"ns_per_op_sharded"`
	Speedup        float64 `json:"speedup"`
	IdealFraction  float64 `json:"ideal_fraction"`
}

// CarryEntry records the carry-exchange communication schedule at one
// shard count: the ⌈log₂S⌉ round bound, the rounds a run actually
// executed (always equal — the exchange is round-optimal by
// construction, and shard-smoke asserts the same through cmd/mp), the
// bytes each round moves, and the schedule priced on a modeled
// 500 ns / 10 GB/s interconnect.
type CarryEntry struct {
	Shards         int     `json:"shards"`
	M              int     `json:"m"`
	Rounds         int     `json:"rounds"`
	MeasuredRounds int     `json:"measured_rounds"`
	BytesPerRound  []int   `json:"bytes_per_round"`
	TotalBytes     int     `json:"total_bytes"`
	SimNs          float64 `json:"simnet_ns_500ns_10gbps"`
}

// CalDecision is one AutoChoice outcome under the measured probe.
type CalDecision struct {
	N      int    `json:"n"`
	M      int    `json:"m"`
	Choice string `json:"choice"`
}

// Calibration records the measured memory probe feeding Auto's
// serial-vs-sorted cost model, and the decisions it produces on the
// snapshot's shapes.
type Calibration struct {
	StreamGBps float64       `json:"stream_gbps"`
	CopyGBps   float64       `json:"copy_gbps"`
	RandomWS   []int         `json:"random_ws_bytes"`
	RandomNs   []float64     `json:"random_ns"`
	TileBytes  int           `json:"tile_bytes"`
	Decisions  []CalDecision `json:"decisions"`
}

// BatchEntry compares one RunBatch of k vectors against k single Runs
// (plus the result copies RunBatch makes unnecessary) on a warm plan.
type BatchEntry struct {
	Backend        string  `json:"backend"`
	N              int     `json:"n"`
	M              int     `json:"m"`
	K              int     `json:"k"`
	NsPerBatch     float64 `json:"ns_per_batch"`
	NsPerKRuns     float64 `json:"ns_per_k_runs"`
	AllocsPerBatch float64 `json:"allocs_per_batch"`
	Speedup        float64 `json:"speedup"`
}

// UpdateEntry compares, on a bound stateful plan, one point update
// plus one point query against the full re-evaluation they replace.
// Mode records the plan's maintenance tier ("fenwick-int64",
// "fenwick-float64", or "rerun" for non-invertible ops), Burst the
// calibrated update budget before the Fenwick tiers fall back to a
// full refresh. Speedup is ns_full_rerun / (ns_update +
// ns_query_prefix): what a single dirty point costs against
// recomputing everything.
type UpdateEntry struct {
	Backend       string  `json:"backend"`
	Elem          string  `json:"elem"`
	Op            string  `json:"op"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Mode          string  `json:"mode"`
	Burst         int     `json:"burst"`
	NsFullRerun   float64 `json:"ns_full_rerun"`
	NsUpdate      float64 `json:"ns_update"`
	NsQueryPrefix float64 `json:"ns_query_prefix"`
	NsReduceLabel float64 `json:"ns_reduce_label"`
	Speedup       float64 `json:"speedup"`
}

// Report is the full snapshot.
type Report struct {
	GoVersion      string        `json:"go_version"`
	GOOS           string        `json:"goos"`
	GOARCH         string        `json:"goarch"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	Workers        int           `json:"workers"`
	Engines        []Entry       `json:"engines"`
	PlanReuse      []PlanEntry   `json:"plan_reuse"`
	SortedVsSerial []SortedEntry `json:"sorted_vs_serial"`
	TiledVsSerial  []TiledEntry  `json:"tiled_vs_serial"`
	ShardScaling   []ShardEntry  `json:"shard_scaling"`
	CarryRounds    []CarryEntry  `json:"carry_rounds"`
	Calibration    *Calibration  `json:"calibration"`
	Batch          []BatchEntry  `json:"batch"`
	UpdateVsRerun  []UpdateEntry `json:"update_vs_rerun"`
	Vectorized     []VecEntry    `json:"vectorized"`
}

// genericAdd is AddInt64 without the FastOp capability: the
// per-element closure baseline the monomorphic kernels replace.
var genericAdd = core.Op[int64]{
	Name:       "+int64 (generic)",
	Identity:   0,
	Combine:    func(a, b int64) int64 { return a + b },
	IsIdentity: func(x int64) bool { return x == 0 },
}

func input(n, m int) ([]int64, []int) {
	rng := rand.New(rand.NewSource(1993))
	values := make([]int64, n)
	labels := make([]int, n)
	for i := range values {
		values[i] = int64(rng.Intn(1000))
		labels[i] = rng.Intn(m)
	}
	return values, labels
}

// measure times fn (one full computation per call) with a hand-rolled
// loop: a warm-up call, rep-count selection targeting ~200ms, then a
// timed loop bracketed by runtime.ReadMemStats for the allocation
// count. GC is left enabled; the pooled paths allocate nothing, so GC
// noise only affects the baselines it would also affect in production.
func measure(fn func()) (nsPerOp, allocsPerOp float64, reps int) {
	fn() // warm-up: pools fill, teams start, calibration runs
	t0 := time.Now()
	fn()
	per := time.Since(t0)
	reps = int(200 * time.Millisecond / max(per, time.Microsecond))
	reps = min(max(reps, 3), 10000)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(reps)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(reps)
	return nsPerOp, allocsPerOp, reps
}

// measureMin is best-of-3 measure: the head-to-head engine ratios
// (sorted_vs_serial, tiled_vs_serial) compare timings taken minutes
// apart on a shared box, where single measurements wander ~10%; the
// minimum is the standard noise-robust estimator for such ratios.
func measureMin(fn func()) float64 {
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		ns, _, _ := measure(fn)
		best = min(best, ns)
	}
	return best
}

// measureUpdate times one update_vs_rerun row: bind vals on a fresh
// plan, then measure a full re-evaluation, a single alternating point
// update, and the point queries that read the maintained state. On the
// Fenwick tiers a query is interleaved every 256 updates so the
// plan's pending counter never crosses its burst budget mid-measurement
// (the query resets it); its O(log n) cost is amortized into the
// update number at well under 1%. On the re-run tier the update is
// measured bare (a dirty mark, no burst machinery) and each measured
// query is preceded by an update so it honestly pays the refresh a
// dirty point forces.
func measureUpdate[T any](report *Report, backendName, elem, opName string, op core.Op[T], vals []T, labels []int, m int, alt [2]T, cfg core.Config) {
	be, err := backend.Open[T](backendName)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := be.Plan(op, labels, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	if err := plan.Bind(vals); err != nil {
		log.Fatal(err)
	}
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	n := len(vals)
	idx := n / 2
	lab := labels[idx]
	fenwick := strings.HasPrefix(plan.IncStats().Mode, "fenwick")

	rerunNs := measureMin(func() { _, err := plan.Run(vals); check(err) })

	flip := 0
	updNs, _, _ := measure(func() {
		check(plan.Update(idx, alt[flip&1]))
		flip++
		if fenwick && flip&255 == 0 {
			_, err := plan.QueryPrefix(idx)
			check(err)
		}
	})
	qNs, _, _ := measure(func() {
		if !fenwick {
			check(plan.Update(idx, alt[flip&1]))
			flip++
		}
		_, err := plan.QueryPrefix(idx)
		check(err)
	})
	rNs, _, _ := measure(func() {
		if !fenwick {
			check(plan.Update(idx, alt[flip&1]))
			flip++
		}
		_, err := plan.ReduceLabel(lab)
		check(err)
	})

	st := plan.IncStats()
	entry := UpdateEntry{
		Backend: backendName, Elem: elem, Op: opName, N: n, M: m,
		Mode: st.Mode, Burst: st.Burst,
		NsFullRerun: rerunNs, NsUpdate: updNs,
		NsQueryPrefix: qNs, NsReduceLabel: rNs,
		Speedup: rerunNs / (updNs + qNs),
	}
	report.UpdateVsRerun = append(report.UpdateVsRerun, entry)
	fmt.Printf("%-10s update   n=%-8d m=%-5d %-15s %10.0f ns rerun %8.1f ns upd %8.1f ns query %8.0fx\n",
		backendName+"/"+elem, n, m, st.Mode, rerunNs, updNs, qNs, entry.Speedup)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_engines.json", "output path")
	quick := flag.Bool("quick", false, "single reduced size (CI smoke)")
	backends := flag.String("backend", "serial,sorted,sharded,spinetree,chunked,parallel,auto",
		"comma-separated backends for the plan-reuse section (registry names: "+
			strings.Join(backend.Names(), ", ")+")")
	flag.Parse()

	workers := 4
	cfg := core.Config{Workers: workers}
	sizes := []struct{ n, m int }{{1 << 16, 1 << 8}, {1 << 20, 1 << 10}}
	if *quick {
		sizes = sizes[:1]
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}

	ws := core.NewWorkspace[int64]()
	b := ws.Acquire()
	defer ws.Release(b)

	for _, sz := range sizes {
		values, labels := input(sz.n, sz.m)
		run := func(engine, variant string, fn func()) {
			ns, allocs, reps := measure(fn)
			report.Engines = append(report.Engines, Entry{
				Engine: engine, Variant: variant, N: sz.n, M: sz.m, Reps: reps,
				NsPerOp: ns, AllocsPerOp: allocs, NsPerElem: ns / float64(sz.n),
			})
			fmt.Printf("%-10s %-8s n=%-8d m=%-5d %12.0f ns/op %8.1f allocs/op %7.2f ns/elem\n",
				engine, variant, sz.n, sz.m, ns, allocs, ns/float64(sz.n))
		}
		check := func(err error) {
			if err != nil {
				log.Fatal(err)
			}
		}

		run("serial", "generic", func() { _, err := core.Serial(genericAdd, values, labels, sz.m); check(err) })
		run("serial", "fast", func() { _, err := core.Serial(core.AddInt64, values, labels, sz.m); check(err) })
		run("serial", "pooled", func() { _, err := b.Serial(core.AddInt64, values, labels, sz.m); check(err) })

		run("sorted", "generic", func() { _, err := core.Sorted(genericAdd, values, labels, sz.m, cfg); check(err) })
		run("sorted", "fast", func() { _, err := core.Sorted(core.AddInt64, values, labels, sz.m, cfg); check(err) })
		run("sorted", "pooled", func() { _, err := b.Sorted(core.AddInt64, values, labels, sz.m, cfg); check(err) })

		run("spinetree", "generic", func() { _, err := core.Spinetree(genericAdd, values, labels, sz.m, cfg); check(err) })
		run("spinetree", "fast", func() { _, err := core.Spinetree(core.AddInt64, values, labels, sz.m, cfg); check(err) })
		run("spinetree", "pooled", func() { _, err := b.Spinetree(core.AddInt64, values, labels, sz.m, cfg); check(err) })

		run("chunked", "generic", func() { _, err := core.Chunked(genericAdd, values, labels, sz.m, cfg); check(err) })
		run("chunked", "fast", func() { _, err := core.Chunked(core.AddInt64, values, labels, sz.m, cfg); check(err) })
		run("chunked", "pooled", func() { _, err := b.Chunked(core.AddInt64, values, labels, sz.m, cfg); check(err) })

		run("parallel", "generic", func() { _, err := core.Parallel(genericAdd, values, labels, sz.m, cfg); check(err) })
		run("parallel", "fast", func() { _, err := core.Parallel(core.AddInt64, values, labels, sz.m, cfg); check(err) })
		run("parallel", "pooled", func() { _, err := b.Parallel(core.AddInt64, values, labels, sz.m, cfg); check(err) })

		run("auto", "fast", func() { _, err := core.Auto(core.AddInt64, values, labels, sz.m, cfg); check(err) })
		run("auto", "pooled", func() { _, err := b.Auto(core.AddInt64, values, labels, sz.m, cfg); check(err) })
	}

	// Plan-reuse comparison: each named backend's one-shot Compute
	// against a Plan built once and evaluated repeatedly on the same
	// labels — the cost the §5.2.1 setup/evaluation split amortizes.
	{
		n, m := 1<<18, 1<<10
		if *quick {
			n, m = 1<<16, 1<<8
		}
		values, labels := input(n, m)
		for _, name := range strings.Split(*backends, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			be, err := backend.Open[int64](name)
			if err != nil {
				log.Fatal(err)
			}
			oneNs, oneAllocs, _ := measure(func() {
				if _, err := be.Compute(core.AddInt64, values, labels, m, cfg); err != nil {
					log.Fatal(err)
				}
			})
			plan, err := be.Plan(core.AddInt64, labels, m, cfg)
			if err != nil {
				log.Fatal(err)
			}
			planNs, planAllocs, _ := measure(func() {
				if _, err := plan.Run(values); err != nil {
					log.Fatal(err)
				}
			})
			plan.Close()
			report.PlanReuse = append(report.PlanReuse, PlanEntry{
				Backend: name, N: n, M: m,
				NsPerOpOneshot: oneNs, AllocsOneshot: oneAllocs,
				NsPerOpPlanRun: planNs, AllocsPlanRun: planAllocs,
				Speedup: oneNs / planNs,
			})
			fmt.Printf("%-10s plan     n=%-8d m=%-5d %12.0f ns/op oneshot %12.0f ns/op plan-run %6.2fx\n",
				name, n, m, oneNs, planNs, oneNs/planNs)
		}
	}

	// Sorted vs serial across label counts: the planned sorted scan
	// (sort amortized away, now dispatching the cache-tiled kernels)
	// against the pooled serial bucket pass, at one worker — the serial
	// regime the Auto cost model prices. The measured ratios are
	// recorded as-is: the tiled scan wins at small m where long runs
	// reward the interleaved chains, and cedes dense label counts to
	// the bucket pass on hosts whose LLC holds the bucket array.
	{
		n := 1 << 18
		ms := []int{1 << 4, 1 << 12}
		if *quick {
			n = 1 << 16
			ms = []int{1 << 4, 1 << 10}
		}
		one := core.Config{Workers: 1}
		be, err := backend.Open[int64]("sorted")
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range ms {
			values, labels := input(n, m)
			serialNs := measureMin(func() {
				if _, err := b.Serial(core.AddInt64, values, labels, m); err != nil {
					log.Fatal(err)
				}
			})
			plan, err := be.Plan(core.AddInt64, labels, m, one)
			if err != nil {
				log.Fatal(err)
			}
			sortedNs := measureMin(func() {
				if _, err := plan.Run(values); err != nil {
					log.Fatal(err)
				}
			})
			plan.Close()
			report.SortedVsSerial = append(report.SortedVsSerial, SortedEntry{
				N: n, M: m, Workers: 1,
				NsSerialPooled: serialNs, NsSortedPlan: sortedNs,
				Speedup: serialNs / sortedNs,
			})
			fmt.Printf("%-10s vs-serial n=%-7d m=%-5d %12.0f ns/op serial %12.0f ns/op sorted %5.2fx\n",
				"sorted", n, m, serialNs, sortedNs, serialNs/sortedNs)
		}
	}

	// Tiled vs untiled vs serial: the same planned sorted scan with the
	// tile budget forced above the working set (the pre-tiling kernel)
	// and with the calibrated budget, across a spread of label counts.
	{
		n := 1 << 18
		ms := []int{1 << 4, 1 << 8, 1 << 12, 1 << 16}
		if *quick {
			n = 1 << 16
			ms = []int{1 << 4, 1 << 10}
		}
		be, err := backend.Open[int64]("sorted")
		if err != nil {
			log.Fatal(err)
		}
		untiledCfg := core.Config{Workers: 1, AutoCal: &core.AutoCalibration{TileBytes: 1 << 30}}
		tiledCfg := core.Config{Workers: 1}
		for _, m := range ms {
			values, labels := input(n, m)
			serialNs := measureMin(func() {
				if _, err := b.Serial(core.AddInt64, values, labels, m); err != nil {
					log.Fatal(err)
				}
			})
			timePlan := func(cfg core.Config) (float64, bool) {
				plan, err := be.Plan(core.AddInt64, labels, m, cfg)
				if err != nil {
					log.Fatal(err)
				}
				defer plan.Close()
				ns := measureMin(func() {
					if _, err := plan.Run(values); err != nil {
						log.Fatal(err)
					}
				})
				return ns, plan.Tiled()
			}
			untiledNs, _ := timePlan(untiledCfg)
			tiledNs, engaged := timePlan(tiledCfg)
			report.TiledVsSerial = append(report.TiledVsSerial, TiledEntry{
				N: n, M: m, Workers: 1, TiledEngaged: engaged,
				NsSerialPooled: serialNs, NsSortedUntiled: untiledNs, NsSortedTiled: tiledNs,
				TiledVsUntiled: untiledNs / tiledNs, TiledVsSerial: serialNs / tiledNs,
			})
			note := ""
			if !engaged {
				note = "  (gate: untiled)"
			}
			fmt.Printf("%-10s tiled    n=%-8d m=%-5d %10.0f ns serial %10.0f ns untiled %10.0f ns tiled %5.2fx vs untiled %5.2fx vs serial%s\n",
				"sorted", n, m, serialNs, untiledNs, tiledNs, untiledNs/tiledNs, serialNs/tiledNs, note)
		}
	}

	// Shard scaling: the sharded plan at S = GOMAXPROCS shards against
	// the single-shard (serial) sorted plan on the same shape — what the
	// round-efficient carry exchange buys over the engine it partitions.
	// The ratio is recorded honestly: ideal_fraction reports how much of
	// the S-way linear ideal the host delivers after the ⌈log₂S⌉ barrier
	// rounds and the second full pass take their share.
	{
		s := runtime.GOMAXPROCS(0)
		shapes := []struct{ n, m int }{{1 << 18, 1 << 10}, {1 << 22, 1 << 10}}
		if *quick {
			shapes = shapes[:1]
			shapes[0].n = 1 << 16
		}
		sortedBe, err := backend.Open[int64]("sorted")
		if err != nil {
			log.Fatal(err)
		}
		shardedBe, err := backend.Open[int64]("sharded")
		if err != nil {
			log.Fatal(err)
		}
		for _, sh := range shapes {
			values, labels := input(sh.n, sh.m)
			single, err := sortedBe.Plan(core.AddInt64, labels, sh.m, core.Config{Workers: 1})
			if err != nil {
				log.Fatal(err)
			}
			singleNs := measureMin(func() {
				if _, err := single.Run(values); err != nil {
					log.Fatal(err)
				}
			})
			single.Close()
			plan, err := shardedBe.Plan(core.AddInt64, labels, sh.m, core.Config{Shards: s})
			if err != nil {
				log.Fatal(err)
			}
			shardedNs := measureMin(func() {
				if _, err := plan.Run(values); err != nil {
					log.Fatal(err)
				}
			})
			st, _ := plan.ShardStats()
			plan.Close()
			entry := ShardEntry{
				N: sh.n, M: sh.m, Shards: st.Shards, Rounds: st.Rounds,
				NsSortedSingle: singleNs, NsSharded: shardedNs,
				Speedup:       singleNs / shardedNs,
				IdealFraction: singleNs / shardedNs / float64(st.Shards),
			}
			report.ShardScaling = append(report.ShardScaling, entry)
			fmt.Printf("%-10s scaling  n=%-8d m=%-5d s=%-3d %10.0f ns single %10.0f ns sharded %5.2fx (%4.2f of ideal)\n",
				"sharded", sh.n, sh.m, st.Shards, singleNs, shardedNs, entry.Speedup, entry.IdealFraction)
		}
	}

	// Carry rounds: the exchange schedule the sharded plan runs at each
	// shard count — round bound vs rounds executed (equal by
	// construction: the exchange is a ⌈log₂S⌉ Hillis–Steele exscan, not
	// a serial stitch), per-round byte volume, and the schedule priced
	// on a modeled 500 ns / 10 GB/s interconnect.
	{
		n, m := 1<<12, 1<<6
		values, labels := input(n, m)
		be, err := backend.Open[int64]("sharded")
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range []int{1, 2, 4, 8} {
			plan, err := be.Plan(core.AddInt64, labels, m, core.Config{Shards: s})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := plan.Run(values); err != nil {
				log.Fatal(err)
			}
			st, ok := plan.ShardStats()
			plan.Close()
			if !ok {
				log.Fatalf("sharded plan at s=%d reported no shard stats", s)
			}
			report.CarryRounds = append(report.CarryRounds, CarryEntry{
				Shards: st.Shards, M: m, Rounds: st.Rounds,
				MeasuredRounds: st.MeasuredRounds,
				BytesPerRound:  st.BytesPerRound, TotalBytes: st.TotalBytes,
				SimNs: st.SimNs(500, 10),
			})
			fmt.Printf("%-10s rounds   s=%-3d m=%-5d rounds=%d measured=%d bytes=%-8d simnet %8.0f ns\n",
				"sharded", st.Shards, m, st.Rounds, st.MeasuredRounds, st.TotalBytes, st.SimNs(500, 10))
		}
	}

	// Calibration: the measured memory probe behind Auto's
	// serial-vs-sorted model, and the decisions it yields on the
	// snapshot's shapes at one worker.
	{
		p := core.MeasureMemProbe()
		c := &Calibration{
			StreamGBps: p.StreamBps / 1e9,
			CopyGBps:   p.CopyBps / 1e9,
			RandomWS:   p.RandomWS,
			RandomNs:   p.RandomNs,
			TileBytes:  p.TileBytes,
		}
		one := core.Config{Workers: 1}
		for _, shape := range []struct{ n, m int }{
			{1 << 16, 1 << 8}, {1 << 18, 1 << 4}, {1 << 18, 1 << 12},
			{1 << 18, 1 << 16}, {1 << 20, 1 << 10},
		} {
			c.Decisions = append(c.Decisions, CalDecision{
				N: shape.n, M: shape.m,
				Choice: core.AutoChoice(shape.n, shape.m, one),
			})
		}
		report.Calibration = c
		fmt.Printf("%-10s probe    stream %.1f GB/s copy %.1f GB/s tile %d B\n",
			"calib", c.StreamGBps, c.CopyGBps, c.TileBytes)
	}

	// Batched evaluation: one RunBatch of k vectors on a warm plan
	// against k single Runs plus the k result copies the batch makes
	// unnecessary (batch writes straight into caller storage).
	{
		n, m := 1<<18, 1<<10
		if *quick {
			n, m = 1<<16, 1<<8
		}
		values, labels := input(n, m)
		for _, name := range []string{"serial", "sorted", "chunked"} {
			be, err := backend.Open[int64](name)
			if err != nil {
				log.Fatal(err)
			}
			plan, err := be.Plan(core.AddInt64, labels, m, cfg)
			if err != nil {
				log.Fatal(err)
			}
			for _, k := range []int{1, 4, 16} {
				srcs := make([][]int64, k)
				dsts := make([][]int64, k)
				for j := range srcs {
					srcs[j] = values
					dsts[j] = make([]int64, n)
				}
				batchNs, batchAllocs, _ := measure(func() {
					if err := plan.RunBatch(dsts, srcs); err != nil {
						log.Fatal(err)
					}
				})
				loopNs, _, _ := measure(func() {
					for j := 0; j < k; j++ {
						res, err := plan.Run(srcs[j])
						if err != nil {
							log.Fatal(err)
						}
						copy(dsts[j], res.Multi)
					}
				})
				report.Batch = append(report.Batch, BatchEntry{
					Backend: name, N: n, M: m, K: k,
					NsPerBatch: batchNs, NsPerKRuns: loopNs,
					AllocsPerBatch: batchAllocs, Speedup: loopNs / batchNs,
				})
				fmt.Printf("%-10s batch    n=%-8d m=%-5d k=%-3d %10.0f ns/batch %10.0f ns/%d-runs %5.2fx\n",
					name, n, m, k, batchNs, loopNs, k, loopNs/batchNs)
			}
			plan.Close()
		}
	}

	// Update vs re-run: a bound stateful plan maintaining its answers
	// through single-point updates, against the full re-evaluation each
	// dirty point would otherwise force. The int64/float64 sum rows ride
	// the O(log n) Fenwick tiers; the max row is the honest non-invertible
	// baseline where every dirtying query pays a full re-run.
	{
		n, m := 1<<18, 1<<10
		if *quick {
			n, m = 1<<16, 1<<8
		}
		ivals, labels := input(n, m)
		fvals := make([]float64, n)
		for i, v := range ivals {
			fvals[i] = float64(v)
		}
		measureUpdate(&report, "serial", "int64", "sum", core.AddInt64, ivals, labels, m, [2]int64{3, 4}, cfg)
		measureUpdate(&report, "sorted", "int64", "sum", core.AddInt64, ivals, labels, m, [2]int64{3, 4}, cfg)
		measureUpdate(&report, "serial", "float64", "sum", core.AddFloat64, fvals, labels, m, [2]float64{3, 4}, cfg)
		measureUpdate(&report, "serial", "int64", "max", core.MaxInt64, ivals, labels, m, [2]int64{3, 4}, cfg)
	}

	// Simulated vectorized engine: the paper's clocks-per-element
	// currency, via the pooled evaluation path.
	{
		n, m := 1<<16, 1<<8
		if *quick {
			n = 1 << 14
		}
		values, ilabels := input(n, m)
		labels := make([]int32, n)
		for i, l := range ilabels {
			labels[i] = int32(l)
		}
		vws := vecmp.NewWorkspace[int64]()
		vb := vws.Acquire()
		defer vws.Release(vb)
		machine := vector.NewDefault()
		res, err := vecmp.MultiprefixIn(vb, machine, core.AddInt64, values, labels, m, vecmp.Config{})
		if err != nil {
			log.Fatal(err)
		}
		clk := res.Phases.Total() / float64(n)
		report.Vectorized = append(report.Vectorized, VecEntry{
			Kernel: "multiprefix", N: n, M: m, ClkPerElem: clk,
		})
		fmt.Printf("%-10s %-8s n=%-8d m=%-5d %38.2f clk/elem (simulated)\n", "vecmp", "pooled", n, m, clk)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
