// Command mp computes a multiprefix operation over values and labels
// read from stdin: one "label value" pair per line (labels 0-based
// integers, values int64). It prints the per-element multiprefix sums
// and the per-label reductions — a direct CLI rendering of the paper's
// Figure 1.
//
// Usage:
//
//	echo "1 1
//	1 2
//	2 1
//	1 2" | mp [-op add|mul|max|min] [-backend auto|serial|...] [-reduce]
//
// The -backend flag (alias: -engine) accepts any name in the unified
// backend registry, including the sorted segmented-scan engine
// ("sorted") and the simulated machines ("vector", "pram").
//
// -update "i=v,i=v" switches to the stateful plan path: the stdin
// vector is bound as resident plan state, each point update is applied
// in order (O(log n) per point for invertible fast ops via the plan's
// Fenwick accumulators, full re-evaluation otherwise), and the final
// maintained multiprefix is printed. With -v the plan's maintenance
// mode and resulting version are reported on stderr.
//
// -calibrate skips the computation and prints the measured memory
// probe the auto engine calibrates against (streaming/copy bandwidth,
// the random-access latency ladder, and the derived tile budget),
// honoring the MP_AUTOCAL override — the hook `make calibrate-smoke`
// checks in CI.
//
// -shards N routes the computation through the sharded backend's plan
// path with N shards and reports the carry-exchange communication
// schedule on stderr in stable "key values" form: the ⌈log₂N⌉ round
// bound, the rounds the run actually executed, and the bytes each
// round moves between shards. -simnet "latencyNs,GBps" additionally
// prices that schedule on a modeled interconnect (per-round latency
// plus bandwidth-limited row transfer) — a simulated multi-node mode;
// the computation itself still runs locally and bit-identically.
// `make shard-smoke` asserts measured_rounds == ⌈log₂N⌉ through this
// path.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"multiprefix"
	"multiprefix/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mp: ")
	opName := flag.String("op", "add", "operator: add, mul, max, min, or, and, xor")
	known := strings.Join(multiprefix.Backends(), ", ")
	backendName := flag.String("backend", "auto", "backend: "+known)
	flag.StringVar(backendName, "engine", "auto", "alias for -backend")
	reduceOnly := flag.Bool("reduce", false, "print only the per-label reductions (multireduce)")
	verbose := flag.Bool("v", false, "report the engine the auto selector picked")
	update := flag.String("update", "", `point updates "i=v,i=v" applied to the bound plan before printing`)
	calibrate := flag.Bool("calibrate", false, "print the measured auto-calibration probe and exit")
	shards := flag.Int("shards", 0, "run the sharded backend with N shards and report the carry-exchange schedule")
	simnet := flag.String("simnet", "", `model the carry exchange on a "latencyNs,GBps" interconnect (implies -shards)`)
	flag.Parse()

	if *calibrate {
		printCalibration()
		return
	}

	// Interrupt (Ctrl-C) cancels a run in progress: the engines notice
	// at their next barrier/chunk boundary and return context.Canceled
	// instead of leaving a large computation spinning. Registered before
	// the input is read so an interrupt during parsing also cancels.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ops := map[string]multiprefix.Op[int64]{
		"add": multiprefix.AddInt64,
		"mul": multiprefix.MulInt64,
		"max": multiprefix.MaxInt64,
		"min": multiprefix.MinInt64,
		"or":  multiprefix.OrInt64,
		"and": multiprefix.AndInt64,
		"xor": multiprefix.XorInt64,
	}
	op, ok := ops[*opName]
	if !ok {
		log.Fatalf("unknown operator %q", *opName)
	}

	var values []int64
	var labels []int
	m := 0
	sc := bufio.NewScanner(os.Stdin)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		var l int
		var v int64
		if _, err := fmt.Sscan(text, &l, &v); err != nil {
			log.Fatalf("line %d: want 'label value', got %q: %v", line, text, err)
		}
		if l < 0 {
			log.Fatalf("line %d: negative label %d", line, l)
		}
		labels = append(labels, l)
		values = append(values, v)
		if l+1 > m {
			m = l + 1
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	be, err := multiprefix.OpenBackend[int64](*backendName)
	if err != nil {
		var unknown *multiprefix.UnknownBackendError
		if errors.As(err, &unknown) {
			log.Fatalf("unknown backend %q; known backends: %s",
				unknown.Name, strings.Join(unknown.Known, ", "))
		}
		log.Fatal(err)
	}
	cfg := multiprefix.Config{Ctx: ctx}
	if *verbose && be.Name() == "auto" {
		fmt.Fprintf(os.Stderr, "mp: auto picked %s for n=%d m=%d\n",
			multiprefix.AutoChoice(len(values), m, cfg), len(values), m)
	}

	if *update != "" {
		runStateful(be, op, values, labels, m, cfg, *update, *verbose, *reduceOnly)
		return
	}

	if *shards > 0 || *simnet != "" {
		runSharded(op, values, labels, m, cfg, *shards, *simnet, *reduceOnly)
		return
	}

	res, err := be.Compute(op, values, labels, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	printResult(values, labels, res.Multi, res.Reductions, *reduceOnly)
}

// printResult writes the standard output format: one "i label value
// multiprefix" line per element (unless reduceOnly) followed by the
// per-label reductions.
func printResult(values []int64, labels []int, multi, red []int64, reduceOnly bool) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if !reduceOnly {
		fmt.Fprintln(w, "# i label value multiprefix")
		for i := range values {
			fmt.Fprintf(w, "%d %d %d %d\n", i, labels[i], values[i], multi[i])
		}
	}
	fmt.Fprintln(w, "# label reduction")
	for k, r := range red {
		fmt.Fprintf(w, "%d %d\n", k, r)
	}
}

// runSharded serves the -shards / -simnet path: compute through the
// sharded backend's plan with the requested shard count, print the
// usual result on stdout, and report the carry-exchange communication
// schedule on stderr — rounds (the ⌈log₂S⌉ bound), measured_rounds
// (what the run executed; shard-smoke asserts they match), the bytes
// each round moves, and, with -simnet "latencyNs,GBps", the modeled
// exchange time on that interconnect. GBps is bytes-per-nanosecond,
// so 10 means a 10 GB/s link.
func runSharded(op multiprefix.Op[int64], values []int64, labels []int, m int, cfg multiprefix.Config, shards int, simnet string, reduceOnly bool) {
	if shards > 0 {
		cfg.Shards = shards
	}
	plan, err := multiprefix.NewPlan("sharded", op, labels, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	res, err := plan.Run(values)
	if err != nil {
		log.Fatal(err)
	}
	printResult(values, labels, res.Multi, res.Reductions, reduceOnly)

	st, ok := plan.ShardStats()
	if !ok {
		log.Fatal("sharded plan reported no shard stats")
	}
	e := bufio.NewWriter(os.Stderr)
	defer e.Flush()
	fmt.Fprintf(e, "mp: shards %d\n", st.Shards)
	fmt.Fprintf(e, "mp: rounds %d\n", st.Rounds)
	fmt.Fprintf(e, "mp: measured_rounds %d\n", st.MeasuredRounds)
	fmt.Fprint(e, "mp: bytes_per_round")
	for _, b := range st.BytesPerRound {
		fmt.Fprintf(e, " %d", b)
	}
	fmt.Fprintln(e)
	fmt.Fprintf(e, "mp: total_bytes %d\n", st.TotalBytes)
	if simnet != "" {
		latS, bwS, ok := strings.Cut(simnet, ",")
		if !ok {
			log.Fatalf(`-simnet: %q is not "latencyNs,GBps"`, simnet)
		}
		lat, err := strconv.ParseFloat(strings.TrimSpace(latS), 64)
		if err != nil {
			log.Fatalf("-simnet: latency %q: %v", latS, err)
		}
		bw, err := strconv.ParseFloat(strings.TrimSpace(bwS), 64)
		if err != nil {
			log.Fatalf("-simnet: bandwidth %q: %v", bwS, err)
		}
		if lat < 0 || bw <= 0 {
			log.Fatalf("-simnet: want latency >= 0 and bandwidth > 0, got %v", simnet)
		}
		fmt.Fprintf(e, "mp: simnet_latency_ns %g\n", lat)
		fmt.Fprintf(e, "mp: simnet_gbps %g\n", bw)
		fmt.Fprintf(e, "mp: simnet_exchange_ns %.1f\n", st.SimNs(lat, bw))
	}
}

// runStateful serves the -update path: build a plan, bind the stdin
// vector as its resident state, apply each "i=v" point update in
// order, and print the maintained multiprefix and reductions from a
// snapshot — exercising the same incremental machinery the service's
// /v1/update + /v1/query endpoints run on.
func runStateful(be multiprefix.Backend[int64], op multiprefix.Op[int64], values []int64, labels []int, m int, cfg multiprefix.Config, spec string, verbose, reduceOnly bool) {
	plan, err := be.Plan(op, labels, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	if err := plan.Bind(values); err != nil {
		log.Fatal(err)
	}
	applied := 0
	for _, part := range strings.Split(spec, ",") {
		is, vs, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			log.Fatalf("-update: %q is not i=v", part)
		}
		i, err := strconv.Atoi(strings.TrimSpace(is))
		if err != nil {
			log.Fatalf("-update: index %q: %v", is, err)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(vs), 10, 64)
		if err != nil {
			log.Fatalf("-update: value %q: %v", vs, err)
		}
		if err := plan.Update(i, v); err != nil {
			log.Fatalf("-update %s: %v", part, err)
		}
		values[i] = v
		applied++
	}
	multi := make([]int64, len(values))
	red := make([]int64, m)
	version, err := plan.Snapshot(multi, red)
	if err != nil {
		log.Fatal(err)
	}
	if verbose {
		st := plan.IncStats()
		fmt.Fprintf(os.Stderr, "mp: plan mode=%s version=%d applied=%d fenwick_updates=%d fenwick_queries=%d reruns=%d\n",
			st.Mode, version, applied, st.FenwickUpdates, st.FenwickQueries, st.Reruns)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if !reduceOnly {
		fmt.Fprintln(w, "# i label value multiprefix")
		for i := range values {
			fmt.Fprintf(w, "%d %d %d %d\n", i, labels[i], values[i], multi[i])
		}
	}
	fmt.Fprintln(w, "# label reduction")
	for k, r := range red {
		fmt.Fprintf(w, "%d %d\n", k, r)
	}
}

// printCalibration reports the resolved process calibration — the
// measured memory probe (or its MP_AUTOCAL=noprobe absence), the
// derived or overridden tile budget, and the auto decisions it
// produces at a few reference shapes — in a stable "key values"
// format for the calibrate-smoke CI check.
func printCalibration() {
	cal := core.DefaultCalibration()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if p := cal.Probe; p != nil {
		fmt.Fprintf(w, "stream_gbps %.2f\n", p.StreamBps/1e9)
		fmt.Fprintf(w, "copy_gbps %.2f\n", p.CopyBps/1e9)
		fmt.Fprint(w, "random_ws_bytes")
		for _, ws := range p.RandomWS {
			fmt.Fprintf(w, " %d", ws)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "random_ns")
		for _, ns := range p.RandomNs {
			fmt.Fprintf(w, " %.2f", ns)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "probe disabled (MP_AUTOCAL=noprobe)")
	}
	fmt.Fprintf(w, "tile_bytes %d\n", core.AutoTileBytes(multiprefix.Config{}))
	fmt.Fprintf(w, "serial_max %d\n", cal.SerialMax)
	fmt.Fprintf(w, "sorted_min_m %d\n", cal.SortedMinM)
	for _, shape := range []struct{ n, m int }{
		{1 << 16, 1 << 8}, {1 << 18, 1 << 4}, {1 << 18, 1 << 12}, {1 << 20, 1 << 16},
	} {
		fmt.Fprintf(w, "auto n=%d m=%d %s\n", shape.n, shape.m,
			multiprefix.AutoChoice(shape.n, shape.m, multiprefix.Config{}))
	}
}
