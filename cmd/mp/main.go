// Command mp computes a multiprefix operation over values and labels
// read from stdin: one "label value" pair per line (labels 0-based
// integers, values int64). It prints the per-element multiprefix sums
// and the per-label reductions — a direct CLI rendering of the paper's
// Figure 1.
//
// Usage:
//
//	echo "1 1
//	1 2
//	2 1
//	1 2" | mp [-op add|mul|max|min] [-backend auto|serial|...] [-reduce]
//
// The -backend flag (alias: -engine) accepts any name in the unified
// backend registry, including the sorted segmented-scan engine
// ("sorted") and the simulated machines ("vector", "pram").
//
// -update "i=v,i=v" switches to the stateful plan path: the stdin
// vector is bound as resident plan state, each point update is applied
// in order (O(log n) per point for invertible fast ops via the plan's
// Fenwick accumulators, full re-evaluation otherwise), and the final
// maintained multiprefix is printed. With -v the plan's maintenance
// mode and resulting version are reported on stderr.
//
// -calibrate skips the computation and prints the measured memory
// probe the auto engine calibrates against (streaming/copy bandwidth,
// the random-access latency ladder, and the derived tile budget),
// honoring the MP_AUTOCAL override — the hook `make calibrate-smoke`
// checks in CI.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"multiprefix"
	"multiprefix/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mp: ")
	opName := flag.String("op", "add", "operator: add, mul, max, min, or, and, xor")
	known := strings.Join(multiprefix.Backends(), ", ")
	backendName := flag.String("backend", "auto", "backend: "+known)
	flag.StringVar(backendName, "engine", "auto", "alias for -backend")
	reduceOnly := flag.Bool("reduce", false, "print only the per-label reductions (multireduce)")
	verbose := flag.Bool("v", false, "report the engine the auto selector picked")
	update := flag.String("update", "", `point updates "i=v,i=v" applied to the bound plan before printing`)
	calibrate := flag.Bool("calibrate", false, "print the measured auto-calibration probe and exit")
	flag.Parse()

	if *calibrate {
		printCalibration()
		return
	}

	// Interrupt (Ctrl-C) cancels a run in progress: the engines notice
	// at their next barrier/chunk boundary and return context.Canceled
	// instead of leaving a large computation spinning. Registered before
	// the input is read so an interrupt during parsing also cancels.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ops := map[string]multiprefix.Op[int64]{
		"add": multiprefix.AddInt64,
		"mul": multiprefix.MulInt64,
		"max": multiprefix.MaxInt64,
		"min": multiprefix.MinInt64,
		"or":  multiprefix.OrInt64,
		"and": multiprefix.AndInt64,
		"xor": multiprefix.XorInt64,
	}
	op, ok := ops[*opName]
	if !ok {
		log.Fatalf("unknown operator %q", *opName)
	}

	var values []int64
	var labels []int
	m := 0
	sc := bufio.NewScanner(os.Stdin)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		var l int
		var v int64
		if _, err := fmt.Sscan(text, &l, &v); err != nil {
			log.Fatalf("line %d: want 'label value', got %q: %v", line, text, err)
		}
		if l < 0 {
			log.Fatalf("line %d: negative label %d", line, l)
		}
		labels = append(labels, l)
		values = append(values, v)
		if l+1 > m {
			m = l + 1
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	be, err := multiprefix.OpenBackend[int64](*backendName)
	if err != nil {
		var unknown *multiprefix.UnknownBackendError
		if errors.As(err, &unknown) {
			log.Fatalf("unknown backend %q; known backends: %s",
				unknown.Name, strings.Join(unknown.Known, ", "))
		}
		log.Fatal(err)
	}
	cfg := multiprefix.Config{Ctx: ctx}
	if *verbose && be.Name() == "auto" {
		fmt.Fprintf(os.Stderr, "mp: auto picked %s for n=%d m=%d\n",
			multiprefix.AutoChoice(len(values), m, cfg), len(values), m)
	}

	if *update != "" {
		runStateful(be, op, values, labels, m, cfg, *update, *verbose, *reduceOnly)
		return
	}

	res, err := be.Compute(op, values, labels, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if !*reduceOnly {
		fmt.Fprintln(w, "# i label value multiprefix")
		for i := range values {
			fmt.Fprintf(w, "%d %d %d %d\n", i, labels[i], values[i], res.Multi[i])
		}
	}
	fmt.Fprintln(w, "# label reduction")
	for k, r := range res.Reductions {
		fmt.Fprintf(w, "%d %d\n", k, r)
	}
}

// runStateful serves the -update path: build a plan, bind the stdin
// vector as its resident state, apply each "i=v" point update in
// order, and print the maintained multiprefix and reductions from a
// snapshot — exercising the same incremental machinery the service's
// /v1/update + /v1/query endpoints run on.
func runStateful(be multiprefix.Backend[int64], op multiprefix.Op[int64], values []int64, labels []int, m int, cfg multiprefix.Config, spec string, verbose, reduceOnly bool) {
	plan, err := be.Plan(op, labels, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	if err := plan.Bind(values); err != nil {
		log.Fatal(err)
	}
	applied := 0
	for _, part := range strings.Split(spec, ",") {
		is, vs, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			log.Fatalf("-update: %q is not i=v", part)
		}
		i, err := strconv.Atoi(strings.TrimSpace(is))
		if err != nil {
			log.Fatalf("-update: index %q: %v", is, err)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(vs), 10, 64)
		if err != nil {
			log.Fatalf("-update: value %q: %v", vs, err)
		}
		if err := plan.Update(i, v); err != nil {
			log.Fatalf("-update %s: %v", part, err)
		}
		values[i] = v
		applied++
	}
	multi := make([]int64, len(values))
	red := make([]int64, m)
	version, err := plan.Snapshot(multi, red)
	if err != nil {
		log.Fatal(err)
	}
	if verbose {
		st := plan.IncStats()
		fmt.Fprintf(os.Stderr, "mp: plan mode=%s version=%d applied=%d fenwick_updates=%d fenwick_queries=%d reruns=%d\n",
			st.Mode, version, applied, st.FenwickUpdates, st.FenwickQueries, st.Reruns)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if !reduceOnly {
		fmt.Fprintln(w, "# i label value multiprefix")
		for i := range values {
			fmt.Fprintf(w, "%d %d %d %d\n", i, labels[i], values[i], multi[i])
		}
	}
	fmt.Fprintln(w, "# label reduction")
	for k, r := range red {
		fmt.Fprintf(w, "%d %d\n", k, r)
	}
}

// printCalibration reports the resolved process calibration — the
// measured memory probe (or its MP_AUTOCAL=noprobe absence), the
// derived or overridden tile budget, and the auto decisions it
// produces at a few reference shapes — in a stable "key values"
// format for the calibrate-smoke CI check.
func printCalibration() {
	cal := core.DefaultCalibration()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if p := cal.Probe; p != nil {
		fmt.Fprintf(w, "stream_gbps %.2f\n", p.StreamBps/1e9)
		fmt.Fprintf(w, "copy_gbps %.2f\n", p.CopyBps/1e9)
		fmt.Fprint(w, "random_ws_bytes")
		for _, ws := range p.RandomWS {
			fmt.Fprintf(w, " %d", ws)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "random_ns")
		for _, ns := range p.RandomNs {
			fmt.Fprintf(w, " %.2f", ns)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "probe disabled (MP_AUTOCAL=noprobe)")
	}
	fmt.Fprintf(w, "tile_bytes %d\n", core.AutoTileBytes(multiprefix.Config{}))
	fmt.Fprintf(w, "serial_max %d\n", cal.SerialMax)
	fmt.Fprintf(w, "sorted_min_m %d\n", cal.SortedMinM)
	for _, shape := range []struct{ n, m int }{
		{1 << 16, 1 << 8}, {1 << 18, 1 << 4}, {1 << 18, 1 << 12}, {1 << 20, 1 << 16},
	} {
		fmt.Fprintf(w, "auto n=%d m=%d %s\n", shape.n, shape.m,
			multiprefix.AutoChoice(shape.n, shape.m, multiprefix.Config{}))
	}
}
