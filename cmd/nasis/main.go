// Command nasis runs the NAS Integer Sort comparison of paper Table 1
// on the simulated vector machine: the partially-vectorized FORTRAN
// bucket sort, the vendor radix stand-in, and the multiprefix sort.
//
// Usage:
//
//	nasis [-n 8388608] [-maxkey 524288] [-iters 10] [-seed 0]
//
// Defaults are the NAS class A problem (2^23 19-bit keys, 10 ranking
// iterations), which takes a few minutes of simulation; use smaller -n
// for a quick look.
package main

import (
	"flag"
	"fmt"
	"log"

	"multiprefix/internal/intsort"
	"multiprefix/internal/stats"
	"multiprefix/internal/vector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nasis: ")
	n := flag.Int("n", 1<<23, "number of keys")
	maxKey := flag.Int("maxkey", 1<<19, "key range [0, maxkey)")
	iters := flag.Int("iters", 10, "ranking iterations (NAS: 10)")
	seed := flag.Uint64("seed", 0, "NAS generator seed (0 = canonical 314159265)")
	protocol := flag.Bool("protocol", false, "run the full NAS protocol (per-iteration key perturbation + partial verification) with the multiprefix ranker only")
	flag.Parse()

	fmt.Printf("NAS IS: n=%d, maxKey=%d, iterations=%d (simulated CRAY Y-MP, 6ns clock)\n\n",
		*n, *maxKey, *iters)
	if *protocol {
		res, err := intsort.RunNASProtocol(vector.DefaultConfig(), *n, *maxKey, *iters, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("multiprefix ranker, full NAS protocol: %.3f simulated seconds (%.1f clk/key)\n",
			res.SimSeconds, res.ClkPerKey)
		fmt.Println("partial verification passed every iteration; full verification passed.")
		return
	}
	res, err := intsort.RunTable1(vector.DefaultConfig(), *n, *maxKey, *iters, *seed)
	if err != nil {
		log.Fatal(err)
	}
	t := stats.NewTable("method", "sim seconds", "clk/key")
	t.AddRow("Partially vectorized FORTRAN bucket sort", res.BucketSec, res.BucketClkPerKey)
	t.AddRow("Vendor vectorized radix (stand-in)", res.CRISec, res.CRIClkPerKey)
	t.AddRow("Multiprefix-based sort", res.MPSec, res.MPClkPerKey)
	fmt.Print(t.String())
	fmt.Printf("\npaper Table 1 (physical Y-MP): 18.24 / 14.00 / 13.66 seconds\n")
}
