// Command phases characterizes the four vectorized multiprefix loops
// (paper Table 3) and sweeps input size against bucket load (paper
// Figure 10) on the simulated vector machine.
//
// Usage:
//
//	phases [-full]
package main

import (
	"flag"
	"log"
	"os"

	"multiprefix/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phases: ")
	full := flag.Bool("full", false, "extend the sweeps to n = 10^6")
	flag.Parse()
	if err := exp.RunByIDs(os.Stdout, "T3,F10,S42", *full); err != nil {
		log.Fatal(err)
	}
}
