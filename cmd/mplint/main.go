// Command mplint runs the project's analyzer suite — hotpathalloc,
// barrierdiscipline, lockdiscipline, terminalerr, ctxpoll — over the
// module and exits non-zero if any non-suppressed diagnostic remains.
// It is the standalone driver for internal/analysis (the offline
// stand-in for go vet -vettool; see the package doc and tools.go).
//
// Usage:
//
//	mplint [-C dir] [-only name,name] [patterns...]
//
// Patterns default to ./... and are resolved by `go list` in the
// module directory (default: the current directory).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiprefix/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mplint", flag.ContinueOnError)
	dir := fs.String("C", ".", "module directory to analyze")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mplint [-C dir] [-only name,name] [patterns...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mplint:", err)
		return 2
	}

	pkgs, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mplint:", err)
		return 2
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mplint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "mplint: %d diagnostic(s)\n", found)
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}
