package multiprefix

import (
	"multiprefix/internal/backend"
)

// Backend is a named multiprefix execution strategy from the unified
// registry: one-shot Compute/Reduce, a reusable Plan pipeline, and an
// Engine adapter for the derived operations. See Backends for the
// registered names.
type Backend[T any] = backend.Backend[T]

// Plan is a prepared multiprefix pipeline over one fixed label
// vector: validation and label-structure setup (class counts, chunk
// partitions, the sorted engine's counting-sort permutation, spinetree
// where the engine allows) happen once, then Run/Reduce evaluate any
// number of value vectors with zero steady-state allocations on the
// portable backends. Results alias plan-owned storage, valid until the
// next call on the same Plan. RunBatch/ReduceBatch evaluate k value
// vectors in one call into caller-owned destinations — fused on the
// serial, sorted, chunked and vector plans (one worker-team round for
// the whole batch, no result copies), a plain loop elsewhere.
//
// A Plan is also a stateful resource: Bind installs a resident value
// vector, after which Update mutates single points and
// QueryPrefix/ReduceLabel/Snapshot answer against the maintained
// state — O(log n) per point for invertible fast ops (int64/float64
// sum) via per-label Fenwick accumulators, full re-evaluation
// otherwise. Version reports the monotonically increasing state
// identity that Bind and Update advance.
type Plan[T any] = backend.Plan[T]

// UnknownBackendError is returned when a backend name is not in the
// registry; it wraps ErrBadInput and lists the known names.
type UnknownBackendError = backend.UnknownBackendError

// ShardStats describes a sharded plan's carry-exchange communication
// schedule: shard count, the ⌈log₂S⌉ round bound, the rounds a run
// actually executed, and the bytes each round moves between shards.
// Its SimNs method prices the schedule on a modeled interconnect.
// Populated by plans on the "sharded" backend; see Plan.ShardStats.
type ShardStats = backend.ShardStats

// Backends lists the registered backend names: "auto" (adaptive,
// default), "serial", "sorted" (segmented scan over a stable
// counting-sort permutation; best planned), "spinetree", "chunked",
// "parallel" (the portable engines), "vector" (the simulated CRAY
// Y-MP port; int64/float64/int32 only) and "pram" (the simulated
// PRAM; int64 multiprefix-PLUS only).
func Backends() []string { return backend.Names() }

// OpenBackend resolves a backend by name for element type T; unknown
// names return *UnknownBackendError.
func OpenBackend[T any](name string) (Backend[T], error) {
	return backend.Open[T](name)
}

// NewPlan opens the named backend and builds a Plan over labels —
// the "plan once, run many" entry point for repeated same-label
// traffic (iterative SpMV, per-pass radix ranking, histogram sweeps).
func NewPlan[T any](backendName string, op Op[T], labels []int, m int, cfg Config) (*Plan[T], error) {
	b, err := backend.Open[T](backendName)
	if err != nil {
		return nil, err
	}
	return b.Plan(op, labels, m, cfg)
}
