module multiprefix

go 1.24
