package multiprefix

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// TestComputePaperExample is the package-level round trip on the
// paper's Figure 1 structure.
func TestComputePaperExample(t *testing.T) {
	values := []int64{1, 2, 1, 2, 1, 1, 2, 3}
	labels := []int{1, 1, 2, 1, 2, 1, 2, 1}
	res, err := Compute(AddInt64, values, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantMulti := []int64{0, 1, 0, 3, 1, 5, 2, 6}
	for i := range wantMulti {
		if res.Multi[i] != wantMulti[i] {
			t.Errorf("Multi[%d] = %d, want %d", i, res.Multi[i], wantMulti[i])
		}
	}
	if res.Reductions[1] != 9 || res.Reductions[2] != 4 {
		t.Errorf("Reductions = %v", res.Reductions)
	}
}

// TestComputeLargeUsesParallelPath crosses the auto threshold and
// must still agree with Serial.
func TestComputeLargeUsesParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, m := 50000, 257
	values := make([]int64, n)
	labels := make([]int, n)
	for i := range values {
		values[i] = int64(rng.Intn(100))
		labels[i] = rng.Intn(m)
	}
	want, err := Serial(AddInt64, values, labels, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Compute(AddInt64, values, labels, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Multi {
		if got.Multi[i] != want.Multi[i] {
			t.Fatalf("Multi[%d] = %d, want %d", i, got.Multi[i], want.Multi[i])
		}
	}
	red, err := Reduce(AddInt64, values, labels, m)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Reductions {
		if red[k] != want.Reductions[k] {
			t.Fatalf("Reduce[%d] = %d, want %d", k, red[k], want.Reductions[k])
		}
	}
}

func TestPublicEngines(t *testing.T) {
	values := []int64{5, -2, 7, 1, 0, 3}
	labels := []int{0, 1, 0, 1, 2, 0}
	want, err := Serial(AddInt64, values, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Spinetree(AddInt64, values, labels, 3, Config{}); err != nil || got.Multi[5] != want.Multi[5] {
		t.Errorf("Spinetree: %v, err=%v", got, err)
	}
	if got, err := Parallel(AddInt64, values, labels, 3, Config{Workers: 2}); err != nil || got.Multi[5] != want.Multi[5] {
		t.Errorf("Parallel: %v, err=%v", got, err)
	}
	if got, err := Chunked(AddInt64, values, labels, 3, Config{Workers: 2}); err != nil || got.Multi[5] != want.Multi[5] {
		t.Errorf("Chunked: %v, err=%v", got, err)
	}
}

func TestPublicValidationError(t *testing.T) {
	_, err := Compute(AddInt64, []int64{1}, []int{7}, 3)
	if !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
}

func TestSegmentedScanPublic(t *testing.T) {
	values := []int64{1, 2, 3, 4, 5}
	segs := []bool{false, false, true, false, true}
	scans, totals, err := SegmentedScan(AddInt64, values, segs, SerialEngine[int64]())
	if err != nil {
		t.Fatal(err)
	}
	wantScans := []int64{0, 1, 0, 3, 0}
	for i := range wantScans {
		if scans[i] != wantScans[i] {
			t.Errorf("scans[%d] = %d, want %d", i, scans[i], wantScans[i])
		}
	}
	wantTotals := []int64{3, 7, 5}
	for i := range wantTotals {
		if totals[i] != wantTotals[i] {
			t.Errorf("totals[%d] = %d, want %d", i, totals[i], wantTotals[i])
		}
	}
}

func TestFetchOpAndEnumeratePublic(t *testing.T) {
	cells := []int64{10}
	fetched, err := FetchOp(AddInt64, cells, []int{0, 0}, []int64{1, 2}, SerialEngine[int64]())
	if err != nil {
		t.Fatal(err)
	}
	if fetched[0] != 10 || fetched[1] != 11 || cells[0] != 13 {
		t.Errorf("fetched=%v cells=%v", fetched, cells)
	}
	ranks, counts, err := Enumerate([]int{0, 1, 0}, 2, SerialEngine[int64]())
	if err != nil {
		t.Fatal(err)
	}
	if ranks[2] != 1 || counts[0] != 2 {
		t.Errorf("ranks=%v counts=%v", ranks, counts)
	}
}

func TestRankAndSortPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 10, 10000} { // below and above autoThreshold
		keys := make([]int32, n)
		for i := range keys {
			keys[i] = int32(rng.Intn(64))
		}
		ranks, err := Rank(keys, 64)
		if err != nil {
			t.Fatal(err)
		}
		sorted, err := Sort(keys, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a] < sorted[b] }) {
			t.Fatalf("n=%d: not sorted", n)
		}
		// Stability: equal keys keep input order, i.e. ranks of equal
		// keys increase with input position.
		last := map[int32]int64{}
		for i, k := range keys {
			if prev, ok := last[k]; ok && ranks[i] < prev {
				t.Fatalf("n=%d: instability at %d", n, i)
			}
			last[k] = ranks[i]
		}
	}
}

func TestHistogramPublic(t *testing.T) {
	counts, err := Histogram([]int{0, 2, 2, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 3 {
		t.Errorf("counts = %v", counts)
	}
}
