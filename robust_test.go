package multiprefix

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// bigInput builds a >=1M-element input, forcing Compute's chunked path.
func bigInput(n, m int) (values []int64, labels []int) {
	rng := rand.New(rand.NewSource(11))
	values = make([]int64, n)
	labels = make([]int, n)
	for i := range values {
		values[i] = int64(rng.Intn(100))
		labels[i] = rng.Intn(m)
	}
	return values, labels
}

// TestComputeCtxPreCancelled: an already-cancelled context returns
// context.Canceled before any phase runs — not a single combine fires.
func TestComputeCtxPreCancelled(t *testing.T) {
	values, labels := bigInput(1<<20, 128)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	op := Op[int64]{Name: "counting-add", Combine: func(x, y int64) int64 {
		calls.Add(1)
		return x + y
	}}
	_, err := ComputeCtx(ctx, op, values, labels, 128)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c != 0 {
		t.Errorf("%d combines ran under a pre-cancelled context", c)
	}
	if _, err := ReduceCtx(ctx, op, values, labels, 128); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReduceCtx err = %v, want context.Canceled", err)
	}
}

// TestComputeCtxMidRunCancel: cancelling mid-run on a >=1M-element
// input aborts within one chunk-polling boundary — promptly, and
// having done only a small fraction of the work.
func TestComputeCtxMidRunCancel(t *testing.T) {
	n := 1 << 20
	values, labels := bigInput(n, 128)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	op := Op[int64]{Name: "cancelling-add", Combine: func(x, y int64) int64 {
		if calls.Add(1) == 4000 {
			cancel()
		}
		return x + y
	}}
	start := time.Now()
	_, err := ComputeCtx(ctx, op, values, labels, 128)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c > int64(n)/2 {
		t.Errorf("cancellation not prompt: %d of %d combines ran", c, n)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v", elapsed)
	}
}

// TestComputeCtxHealthy: with a live context the results are identical
// to Compute, on both sides of the engine-selection threshold.
func TestComputeCtxHealthy(t *testing.T) {
	for _, n := range []int{100, 10000} {
		values, labels := bigInput(n, 16)
		want, err := Compute(AddInt64, values, labels, 16)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeCtx(context.Background(), AddInt64, values, labels, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Multi {
			if got.Multi[i] != want.Multi[i] {
				t.Fatalf("n=%d: Multi[%d] = %d, want %d", n, i, got.Multi[i], want.Multi[i])
			}
		}
		wantRed, err := Reduce(AddInt64, values, labels, 16)
		if err != nil {
			t.Fatal(err)
		}
		gotRed, err := ReduceCtx(context.Background(), AddInt64, values, labels, 16)
		if err != nil {
			t.Fatal(err)
		}
		for k := range wantRed {
			if gotRed[k] != wantRed[k] {
				t.Fatalf("n=%d: Reductions[%d] = %d, want %d", n, k, gotRed[k], wantRed[k])
			}
		}
	}
}

// TestFacadeFallback: the package-level Fallback wrapper degrades a
// panicking engine to the serial reference.
func TestFacadeFallback(t *testing.T) {
	values, labels := bigInput(1000, 8)
	var report FallbackReport
	wild := func(op Op[int64], values []int64, labels []int, m int) (Result[int64], error) {
		panic("engine bug")
	}
	eng := Fallback(Engine[int64](wild), &report)
	got, err := eng(AddInt64, values, labels, 8)
	if err != nil {
		t.Fatalf("fallback: %v", err)
	}
	if !report.FellBack {
		t.Error("report.FellBack = false")
	}
	var pe *EnginePanicError
	if !errors.As(report.PrimaryErr, &pe) {
		t.Errorf("PrimaryErr = %v, want *EnginePanicError", report.PrimaryErr)
	}
	want, err := Serial(AddInt64, values, labels, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Multi {
		if got.Multi[i] != want.Multi[i] {
			t.Fatalf("Multi[%d] = %d, want %d", i, got.Multi[i], want.Multi[i])
		}
	}
}

// TestFacadeCtxEngines: the exported ParallelCtx/ChunkedCtx wrappers
// honor cancellation.
func TestFacadeCtxEngines(t *testing.T) {
	values, labels := bigInput(5000, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelCtx(ctx, AddInt64, values, labels, 16, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ParallelCtx err = %v, want context.Canceled", err)
	}
	if _, err := ChunkedCtx(ctx, AddInt64, values, labels, 16, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ChunkedCtx err = %v, want context.Canceled", err)
	}
	live := context.Background()
	got, err := ParallelCtx(live, AddInt64, values, labels, 16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Serial(AddInt64, values, labels, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Multi {
		if got.Multi[i] != want.Multi[i] {
			t.Fatalf("Multi[%d] = %d, want %d", i, got.Multi[i], want.Multi[i])
		}
	}
}
