#!/usr/bin/env bash
# check_shard.sh — sharded-backend smoke gate (`make shard-smoke`).
#
# Asserts, from outside the process, the three properties the sharded
# engine's PR promises:
#   1. Parity: at S ∈ {1, 2, 7} the sharded plan's full output
#      (multiprefix + reductions) is bit-identical to the serial
#      backend on the same input — Definition 1 order preserved across
#      the shard carry exchange.
#   2. Round efficiency: the carry exchange runs exactly ⌈log₂S⌉
#      barrier rounds — measured_rounds (counted at runtime by worker
#      0) equals the rounds bound the plan computed, not the S−1 a
#      serial stitch would cost.
#   3. Simnet: the modeled multi-node exchange (-simnet latency,GBps)
#      reports a positive exchange time and the same round count.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

$GO build -o "$BIN/mp" ./cmd/mp

# Input: 5000 elements over 13 labels, values cycling through a range
# with sign flips — enough elements that every shard count in the
# matrix gets multi-element shards and every label crosses shards.
awk 'BEGIN { for (i = 0; i < 5000; i++) print (i * 7) % 13, (i % 23) - 11 }' >"$BIN/input.txt"

"$BIN/mp" -backend serial <"$BIN/input.txt" >"$BIN/serial.out"

# 1 + 2. Parity and asserted round count at S ∈ {1, 2, 7}
# (⌈log₂S⌉ = 0, 1, 3).
for spec in "1 0" "2 1" "7 3"; do
  S=${spec% *}; WANT=${spec#* }
  "$BIN/mp" -shards "$S" <"$BIN/input.txt" >"$BIN/sharded.out" 2>"$BIN/sharded.err"
  if ! cmp -s "$BIN/serial.out" "$BIN/sharded.out"; then
    echo "shard-smoke: S=$S output differs from serial"
    diff "$BIN/serial.out" "$BIN/sharded.out" | head -20
    exit 1
  fi
  get() { awk -v k="$1" '$1 == "mp:" && $2 == k { print $3 }' "$BIN/sharded.err"; }
  ROUNDS=$(get rounds)
  MEASURED=$(get measured_rounds)
  if [ "$ROUNDS" != "$WANT" ]; then
    echo "shard-smoke: S=$S rounds=$ROUNDS, want ceil(log2 S)=$WANT"; cat "$BIN/sharded.err"; exit 1
  fi
  if [ "$MEASURED" != "$WANT" ]; then
    echo "shard-smoke: S=$S measured_rounds=$MEASURED, want $WANT"; cat "$BIN/sharded.err"; exit 1
  fi
done

# 3. Simnet smoke: S=4 on a 500 ns / 10 GB/s modeled interconnect.
"$BIN/mp" -shards 4 -simnet 500,10 <"$BIN/input.txt" >"$BIN/simnet.out" 2>"$BIN/simnet.err"
if ! cmp -s "$BIN/serial.out" "$BIN/simnet.out"; then
  echo "shard-smoke: simnet run output differs from serial"; exit 1
fi
SIM=$(awk '$1 == "mp:" && $2 == "simnet_exchange_ns" { print $3 }' "$BIN/simnet.err")
if [ -z "$SIM" ] || ! awk -v v="$SIM" 'BEGIN { exit !(v > 0) }'; then
  echo "shard-smoke: simnet_exchange_ns not positive: '$SIM'"; cat "$BIN/simnet.err"; exit 1
fi
MEASURED=$(awk '$1 == "mp:" && $2 == "measured_rounds" { print $3 }' "$BIN/simnet.err")
if [ "$MEASURED" != 2 ]; then
  echo "shard-smoke: simnet S=4 measured_rounds=$MEASURED, want 2"; cat "$BIN/simnet.err"; exit 1
fi

echo "shard-smoke: ok (parity at S=1,2,7; rounds = ceil(log2 S); simnet exchange ${SIM} ns)"
