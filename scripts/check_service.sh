#!/usr/bin/env bash
# check_service.sh — service-layer smoke gate (`make check-service`).
#
# Boots mpd on a random loopback port with chaos armed, then asserts
# the whole ladder from outside the process:
#   1. readiness turns 200,
#   2. a smoke multiprefix request answers correctly,
#   3. a chaos-panicked request is still answered (degradation ladder:
#      200 + "fallback":"serial"),
#   4. a malformed request gets a typed 400,
#   5. draining rejects new work with 503 + Retry-After while SIGTERM
#      exits cleanly with zero dropped in-flight requests,
# and builds cmd/mpload so the load generator cannot rot.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
BIN=$(mktemp -d)
trap 'kill "$MPD_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/mpd" ./cmd/mpd
$GO build -o "$BIN/mpload" ./cmd/mpload

PORT=$((20000 + RANDOM % 20000))
URL="http://127.0.0.1:$PORT"
# panic=2: every second request hits an engine panic, so the ladder is
# exercised by the smoke traffic itself.
"$BIN/mpd" -addr "127.0.0.1:$PORT" -backend chunked -chaos "panic=2,seed=9" \
  >"$BIN/mpd.log" 2>&1 &
MPD_PID=$!

for i in $(seq 1 100); do
  if curl -sf "$URL/readyz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$MPD_PID" 2>/dev/null; then
    echo "check-service: mpd died on startup"; cat "$BIN/mpd.log"; exit 1
  fi
  sleep 0.1
done
curl -sf "$URL/readyz" >/dev/null || { echo "check-service: never ready"; exit 1; }

BODY='{"op":"sum","m":2,"labels":[0,1,0,1,0],"values":[1,2,3,4,5]}'
WANT_MULTI='[0,0,1,2,4]'

# Smoke + chaos: with panic=2, four requests guarantee both a clean
# pass and a ladder pass; each must return the same correct answer.
SAW_FALLBACK=0
for i in 1 2 3 4; do
  RESP=$(curl -sf -X POST "$URL/v1/multiprefix" -d "$BODY")
  GOT=$(echo "$RESP" | jq -c .multi)
  if [ "$GOT" != "$WANT_MULTI" ]; then
    echo "check-service: wrong answer: $RESP"; exit 1
  fi
  if [ "$(echo "$RESP" | jq -r .fallback)" = "serial" ]; then SAW_FALLBACK=1; fi
done
if [ "$SAW_FALLBACK" != 1 ]; then
  echo "check-service: chaos panic never walked the ladder"; exit 1
fi
FB=$(curl -sf "$URL/v1/stats" | jq .serial_fallbacks)
if [ "$FB" -lt 1 ]; then
  echo "check-service: stats report no serial fallbacks"; exit 1
fi

# Typed rejection.
CODE=$(curl -s -o "$BIN/err.json" -w '%{http_code}' -X POST "$URL/v1/multiprefix" \
  -d '{"op":"median","m":2,"labels":[0],"values":[1]}')
if [ "$CODE" != 400 ] || [ "$(jq -r .error.kind "$BIN/err.json")" != bad_input ]; then
  echo "check-service: bad op not rejected typed (code $CODE)"; exit 1
fi

# Drain: SIGTERM, then new work must see 503 (draining) or connection
# refused (listener closed) — never a hang or a 5xx crash page.
kill -TERM "$MPD_PID"
sleep 0.2
CODE=$(curl -s -o "$BIN/drain.json" -w '%{http_code}' --max-time 5 \
  -X POST "$URL/v1/multiprefix" -d "$BODY" || true)
case "$CODE" in
  503)
    KIND=$(jq -r .error.kind "$BIN/drain.json")
    [ "$KIND" = draining ] || { echo "check-service: drain kind $KIND"; exit 1; } ;;
  000|"") ;; # listener already down: also a clean drain
  *) echo "check-service: unexpected status $CODE during drain"; exit 1 ;;
esac

for i in $(seq 1 100); do
  kill -0 "$MPD_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$MPD_PID" 2>/dev/null; then
  echo "check-service: mpd did not exit after SIGTERM"; cat "$BIN/mpd.log"; exit 1
fi
wait "$MPD_PID" || { echo "check-service: mpd exited nonzero"; cat "$BIN/mpd.log"; exit 1; }
grep -q "drained:" "$BIN/mpd.log" || { echo "check-service: no drain summary"; cat "$BIN/mpd.log"; exit 1; }

echo "check-service: ok (smoke, chaos ladder, typed errors, drain)"
