#!/usr/bin/env bash
# check_service.sh — service-layer smoke gate (`make check-service`).
#
# Boots mpd on a random loopback port with chaos armed, then asserts
# the whole ladder from outside the process:
#   1. readiness turns 200,
#   2. a smoke multiprefix request answers correctly,
#   3. a chaos-panicked request is still answered (degradation ladder:
#      200 + "fallback":"serial"),
#   4. a malformed request gets a typed 400,
#   5. stateful plans work end to end: bind resident values over
#      /v1/update, point-update, pinned /v1/query reads the maintained
#      answer, a stale pin is rejected 409 version_conflict, and
#      /metrics exposes the counters in Prometheus text format,
#   6. draining rejects new work with 503 + Retry-After while SIGTERM
#      exits cleanly with zero dropped in-flight requests,
#   7. the drain persisted the plan key set (-warm) and a second boot
#      pre-builds it before readiness,
# and builds cmd/mpload so the load generator cannot rot.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
BIN=$(mktemp -d)
trap 'kill "$MPD_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/mpd" ./cmd/mpd
$GO build -o "$BIN/mpload" ./cmd/mpload

PORT=$((20000 + RANDOM % 20000))
URL="http://127.0.0.1:$PORT"
# panic=2: every second request hits an engine panic, so the ladder is
# exercised by the smoke traffic itself.
"$BIN/mpd" -addr "127.0.0.1:$PORT" -backend chunked -chaos "panic=2,seed=9" \
  -warm "$BIN/warm.json" >"$BIN/mpd.log" 2>&1 &
MPD_PID=$!

for i in $(seq 1 100); do
  if curl -sf "$URL/readyz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$MPD_PID" 2>/dev/null; then
    echo "check-service: mpd died on startup"; cat "$BIN/mpd.log"; exit 1
  fi
  sleep 0.1
done
curl -sf "$URL/readyz" >/dev/null || { echo "check-service: never ready"; exit 1; }

BODY='{"op":"sum","m":2,"labels":[0,1,0,1,0],"values":[1,2,3,4,5]}'
WANT_MULTI='[0,0,1,2,4]'

# Smoke + chaos: with panic=2, four requests guarantee both a clean
# pass and a ladder pass; each must return the same correct answer.
SAW_FALLBACK=0
for i in 1 2 3 4; do
  RESP=$(curl -sf -X POST "$URL/v1/multiprefix" -d "$BODY")
  GOT=$(echo "$RESP" | jq -c .multi)
  if [ "$GOT" != "$WANT_MULTI" ]; then
    echo "check-service: wrong answer: $RESP"; exit 1
  fi
  if [ "$(echo "$RESP" | jq -r .fallback)" = "serial" ]; then SAW_FALLBACK=1; fi
done
if [ "$SAW_FALLBACK" != 1 ]; then
  echo "check-service: chaos panic never walked the ladder"; exit 1
fi
FB=$(curl -sf "$URL/v1/stats" | jq .serial_fallbacks)
if [ "$FB" -lt 1 ]; then
  echo "check-service: stats report no serial fallbacks"; exit 1
fi

# Typed rejection.
CODE=$(curl -s -o "$BIN/err.json" -w '%{http_code}' -X POST "$URL/v1/multiprefix" \
  -d '{"op":"median","m":2,"labels":[0],"values":[1]}')
if [ "$CODE" != 400 ] || [ "$(jq -r .error.kind "$BIN/err.json")" != bad_input ]; then
  echo "check-service: bad op not rejected typed (code $CODE)"; exit 1
fi

# Stateful plans: bind resident values, point-update, then a query
# pinned to the returned version must read the maintained answer; a
# stale pin must be rejected typed.
VER=$(curl -sf -X POST "$URL/v1/update" -d "$BODY" | jq .version)
if [ "$VER" -lt 1 ]; then
  echo "check-service: bind returned version $VER"; exit 1
fi
VER2=$(curl -sf -X POST "$URL/v1/update" \
  -d '{"op":"sum","m":2,"labels":[0,1,0,1,0],"updates":[{"i":0,"v":9}]}' | jq .version)
QRESP=$(curl -sf -X POST "$URL/v1/query" -d "{\"op\":\"sum\",\"m\":2,\"labels\":[0,1,0,1,0],\"indices\":[4],\"reduce_labels\":[0],\"pin_version\":$VER2}")
# values [1,2,3,4,5] with element 0 updated to 9: label-0 prefix at
# i=4 is 9+3=12, label-0 reduction 9+3+5=17.
if [ "$(echo "$QRESP" | jq -c .prefix)" != '[12]' ] ||
   [ "$(echo "$QRESP" | jq -c .reduce)" != '[17]' ]; then
  echo "check-service: stateful query wrong: $QRESP"; exit 1
fi
CODE=$(curl -s -o "$BIN/pin.json" -w '%{http_code}' -X POST "$URL/v1/query" \
  -d '{"op":"sum","m":2,"labels":[0,1,0,1,0],"indices":[4],"pin_version":1}')
if [ "$CODE" != 409 ] || [ "$(jq -r .error.kind "$BIN/pin.json")" != version_conflict ]; then
  echo "check-service: stale pin not rejected typed (code $CODE)"; exit 1
fi
curl -sf "$URL/metrics" >"$BIN/metrics.txt"
grep -q '^mp_updates_applied_total 1$' "$BIN/metrics.txt" ||
  { echo "check-service: /metrics missing updates counter"; exit 1; }
grep -q '^mp_bound_plans 1$' "$BIN/metrics.txt" ||
  { echo "check-service: /metrics missing bound-plans gauge"; exit 1; }

# Drain: SIGTERM, then new work must see 503 (draining) or connection
# refused (listener closed) — never a hang or a 5xx crash page.
kill -TERM "$MPD_PID"
sleep 0.2
CODE=$(curl -s -o "$BIN/drain.json" -w '%{http_code}' --max-time 5 \
  -X POST "$URL/v1/multiprefix" -d "$BODY" || true)
case "$CODE" in
  503)
    KIND=$(jq -r .error.kind "$BIN/drain.json")
    [ "$KIND" = draining ] || { echo "check-service: drain kind $KIND"; exit 1; } ;;
  000|"") ;; # listener already down: also a clean drain
  *) echo "check-service: unexpected status $CODE during drain"; exit 1 ;;
esac

for i in $(seq 1 100); do
  kill -0 "$MPD_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$MPD_PID" 2>/dev/null; then
  echo "check-service: mpd did not exit after SIGTERM"; cat "$BIN/mpd.log"; exit 1
fi
wait "$MPD_PID" || { echo "check-service: mpd exited nonzero"; cat "$BIN/mpd.log"; exit 1; }
grep -q "drained:" "$BIN/mpd.log" || { echo "check-service: no drain summary"; cat "$BIN/mpd.log"; exit 1; }

# Warm round-trip: the drain must have persisted the plan key set, and
# a second boot must pre-build it before turning ready.
[ -s "$BIN/warm.json" ] || { echo "check-service: drain left no warm file"; exit 1; }
"$BIN/mpd" -addr "127.0.0.1:$PORT" -backend chunked -warm "$BIN/warm.json" \
  >"$BIN/mpd2.log" 2>&1 &
MPD_PID=$!
for i in $(seq 1 100); do
  if curl -sf "$URL/readyz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$MPD_PID" 2>/dev/null; then
    echo "check-service: warmed mpd died on startup"; cat "$BIN/mpd2.log"; exit 1
  fi
  sleep 0.1
done
WARMED=$(curl -sf "$URL/v1/stats" | jq .warmed_plans)
if [ "$WARMED" -lt 1 ]; then
  echo "check-service: second boot warmed $WARMED plans"; cat "$BIN/mpd2.log"; exit 1
fi
kill -TERM "$MPD_PID"
for i in $(seq 1 100); do
  kill -0 "$MPD_PID" 2>/dev/null || break
  sleep 0.1
done
wait "$MPD_PID" || { echo "check-service: warmed mpd exited nonzero"; cat "$BIN/mpd2.log"; exit 1; }

echo "check-service: ok (smoke, chaos ladder, typed errors, stateful plans, metrics, drain, warm)"
