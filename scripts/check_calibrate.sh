#!/usr/bin/env bash
# check_calibrate.sh — auto-calibrator smoke gate (`make calibrate-smoke`).
#
# Asserts the measured memory probe behind Auto's engine choice:
#   1. `mp -calibrate` completes inside the 2 s budget (the probe must
#      stay cheap enough to run once per process),
#   2. it reports sane, non-zero stream/copy bandwidths, a full
#      latency ladder, and a non-zero tile budget,
#   3. MP_AUTOCAL=noprobe,tilebytes=N skips the measurement and pins
#      the tile budget — the CI determinism escape hatch the tests
#      rely on.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

$GO build -o "$BIN/mp" ./cmd/mp

# 1. Measured probe, timed. date +%s%N is GNU coreutils, present on
# the CI image; the 2 s budget is ~20x the probe's expected ~100 ms.
START=$(date +%s%N)
MP_AUTOCAL= "$BIN/mp" -calibrate >"$BIN/probe.out"
ELAPSED_MS=$(( ($(date +%s%N) - START) / 1000000 ))
if [ "$ELAPSED_MS" -gt 2000 ]; then
  echo "calibrate-smoke: probe took ${ELAPSED_MS}ms (budget 2000ms)"; exit 1
fi

get() { awk -v k="$1" '$1 == k { print $2 }' "$BIN/probe.out"; }

STREAM=$(get stream_gbps)
COPY=$(get copy_gbps)
TILE=$(get tile_bytes)
if ! awk -v v="$STREAM" 'BEGIN { exit !(v > 0) }'; then
  echo "calibrate-smoke: stream_gbps not positive: '$STREAM'"; cat "$BIN/probe.out"; exit 1
fi
if ! awk -v v="$COPY" 'BEGIN { exit !(v > 0) }'; then
  echo "calibrate-smoke: copy_gbps not positive: '$COPY'"; cat "$BIN/probe.out"; exit 1
fi
if [ -z "$TILE" ] || [ "$TILE" -le 0 ]; then
  echo "calibrate-smoke: tile_bytes not positive: '$TILE'"; cat "$BIN/probe.out"; exit 1
fi
RUNGS=$(awk '$1 == "random_ns" { print NF - 1 }' "$BIN/probe.out")
if [ "${RUNGS:-0}" -lt 3 ]; then
  echo "calibrate-smoke: latency ladder too short ($RUNGS rungs)"; cat "$BIN/probe.out"; exit 1
fi
# Every auto decision must resolve to a registered engine name.
if awk '$1 == "auto" && $NF !~ /^(serial|sorted|sharded|chunked|parallel)$/ { exit 1 }' "$BIN/probe.out"; then :; else
  echo "calibrate-smoke: unresolved auto decision"; cat "$BIN/probe.out"; exit 1
fi

# 2. Deterministic override path: no measurement, pinned tile budget.
MP_AUTOCAL=noprobe,tilebytes=262144 "$BIN/mp" -calibrate >"$BIN/noprobe.out"
grep -q "probe disabled" "$BIN/noprobe.out" || {
  echo "calibrate-smoke: noprobe still measured"; cat "$BIN/noprobe.out"; exit 1
}
PINNED=$(awk '$1 == "tile_bytes" { print $2 }' "$BIN/noprobe.out")
if [ "$PINNED" != 262144 ]; then
  echo "calibrate-smoke: tilebytes override not honored (got '$PINNED')"; cat "$BIN/noprobe.out"; exit 1
fi

echo "calibrate-smoke: ok (probe ${ELAPSED_MS}ms, stream ${STREAM} GB/s, copy ${COPY} GB/s, tile ${TILE} B, override pinned)"
