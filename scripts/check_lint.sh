#!/usr/bin/env bash
# check_lint.sh — the static-analysis gate behind `make lint`.
#
# Builds mplint once, runs `go vet` plus the project analyzer suite
# over the module, and fails on any non-suppressed diagnostic. When a
# govulncheck binary is available it also runs, best-effort: the module
# has no third-party dependencies and the container is typically
# offline, so a missing binary or an unreachable vuln DB skips the step
# with a notice instead of failing the gate.
set -u

cd "$(dirname "$0")/.."
GO="${GO:-go}"

fail=0

echo "== go vet =="
if ! "$GO" vet ./...; then
    fail=1
fi

echo "== mplint =="
bin="$(mktemp -d)/mplint"
trap 'rm -rf "$(dirname "$bin")"' EXIT
if ! "$GO" build -o "$bin" ./cmd/mplint; then
    echo "check_lint: failed to build mplint" >&2
    exit 1
fi
if ! "$bin" ./...; then
    fail=1
fi

echo "== govulncheck (best-effort) =="
if command -v govulncheck >/dev/null 2>&1; then
    # Vulnerability lookup needs the network; a resolver failure is an
    # environment problem, not a finding.
    if ! govulncheck ./...; then
        echo "check_lint: govulncheck reported findings or could not reach the vuln DB (not fatal offline)" >&2
    fi
else
    echo "check_lint: govulncheck not installed; skipping" >&2
fi

exit "$fail"
