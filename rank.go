package multiprefix

import (
	"multiprefix/internal/backend"
	"multiprefix/internal/intsort"
)

// Rank assigns every key its position in sorted order, stably (equal
// keys keep input order) — the integer-sorting algorithm of paper
// Figure 11 and §5.1, built on two multiprefix calls through the
// adaptive backend. Keys must lie in [0, maxKey).
func Rank(keys []int32, maxKey int) ([]int64, error) {
	return RankOn("auto", keys, maxKey, Config{})
}

// RankOn is Rank through a named backend, for study and measurement
// of the same algorithm on every implementation.
func RankOn(backendName string, keys []int32, maxKey int, cfg Config) ([]int64, error) {
	be, err := backend.Open[int64](backendName)
	if err != nil {
		return nil, err
	}
	return intsort.RankMP(keys, maxKey, be, cfg)
}

// Sort returns the keys in stable sorted order via Rank + permute —
// a counting sort expressed through the multiprefix primitive.
func Sort(keys []int32, maxKey int) ([]int32, error) {
	ranks, err := Rank(keys, maxKey)
	if err != nil {
		return nil, err
	}
	return intsort.Permute(keys, ranks)
}

// Histogram counts key occurrences — the multireduce special case the
// paper singles out (§1's "Vector Update Loop").
func Histogram(keys []int, m int) ([]int64, error) {
	ones := make([]int64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	return Reduce(AddInt64, ones, keys, m)
}
