package multiprefix

import (
	"multiprefix/internal/core"
	"multiprefix/internal/intsort"
)

// Rank assigns every key its position in sorted order, stably (equal
// keys keep input order) — the integer-sorting algorithm of paper
// Figure 11 and §5.1, built on two multiprefix calls. Keys must lie in
// [0, maxKey).
func Rank(keys []int32, maxKey int) ([]int64, error) {
	return intsort.RankMP(keys, maxKey, core.AutoEngine[int64](core.Config{}))
}

// Sort returns the keys in stable sorted order via Rank + permute —
// a counting sort expressed through the multiprefix primitive.
func Sort(keys []int32, maxKey int) ([]int32, error) {
	ranks, err := Rank(keys, maxKey)
	if err != nil {
		return nil, err
	}
	return intsort.Permute(keys, ranks)
}

// Histogram counts key occurrences — the multireduce special case the
// paper singles out (§1's "Vector Update Loop").
func Histogram(keys []int, m int) ([]int64, error) {
	ones := make([]int64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	return Reduce(AddInt64, ones, keys, m)
}
