// Package multiprefix implements the multiprefix operation of
// Sheffler, "Implementing the Multiprefix Operation on Parallel and
// Vector Computers" (CMU-CS-92-173 / SPAA 1993), together with the
// operations it subsumes: multireduce, segmented scans, fetch-and-op,
// enumeration and stable integer ranking.
//
// For values A = (a_0, ..., a_{n-1}) with labels l_i in [0, m) and an
// associative operator ⊕:
//
//	multiprefix sum  s_i = ⊕ { a_j : l_j == l_i, j < i }
//	reduction        r_k = ⊕ { a_j : l_j == k }
//
// Both combine strictly in vector (index) order, so non-commutative
// operators are safe; the first element of each label class receives
// the operator identity.
//
// # Quick start
//
//	values := []int64{1, 2, 1, 2, 1, 1, 2, 3}
//	labels := []int{1, 1, 2, 1, 2, 1, 2, 1}
//	res, err := multiprefix.Compute(multiprefix.AddInt64, values, labels, 4)
//	// res.Multi      = [0 1 0 3 1 5 2 6]
//	// res.Reductions = [0 9 4 0]
//
// Compute picks an engine automatically (serial below a few thousand
// elements, multicore above). The paper's own algorithms are exposed
// for study and measurement: Spinetree (the sequential four-phase
// algorithm), Parallel (barrier-synchronous goroutines with atomic
// CRCW-ARB writes), the PRAM-simulated version (internal/pram) and the
// fully vectorized CRAY Y-MP port on a simulated vector machine
// (internal/vecmp). See DESIGN.md for the complete map.
package multiprefix

import (
	"context"

	"multiprefix/internal/backend"
	"multiprefix/internal/core"
)

// Op is a binary associative operator with identity; see the
// predeclared operators below or construct your own.
type Op[T any] = core.Op[T]

// Result carries the multiprefix sums and the per-label reductions.
type Result[T any] = core.Result[T]

// Config tunes the explicit engines; the zero value means "sane
// defaults" (auto row length, robust spine test, GOMAXPROCS workers).
type Config = core.Config

// Engine is any multiprefix implementation; the derived operations
// (SegmentedScan, FetchOp, ...) accept one so callers choose the
// execution strategy.
type Engine[T any] = core.Engine[T]

// ErrBadInput is wrapped by every input-validation failure.
var ErrBadInput = core.ErrBadInput

// EnginePanicError is returned when a panic — typically from a
// user-supplied Op.Combine — was recovered inside an engine. Worker
// goroutines release their barrier before returning, so the process
// survives, no goroutine leaks, and the run fails with this typed
// error instead of crashing.
type EnginePanicError = core.EnginePanicError

// FallbackReport records what a Fallback engine observed during its
// most recent run.
type FallbackReport = core.FallbackReport

// FaultHook receives engine-internal events for deterministic fault
// injection (see Config.FaultHook); production code leaves it nil.
type FaultHook = core.FaultHook

// Predeclared operators. AddInt64 is the multiprefix-PLUS operator the
// paper concentrates on.
var (
	AddInt64 = core.AddInt64
	MulInt64 = core.MulInt64
	MaxInt64 = core.MaxInt64
	MinInt64 = core.MinInt64
	OrInt64  = core.OrInt64
	AndInt64 = core.AndInt64
	XorInt64 = core.XorInt64

	AddFloat64 = core.AddFloat64
	MulFloat64 = core.MulFloat64
	MaxFloat64 = core.MaxFloat64
	MinFloat64 = core.MinFloat64

	AndBool = core.AndBool
	OrBool  = core.OrBool
	XorBool = core.XorBool

	ConcatString = core.ConcatString
)

// AutoCalibration holds the crossover points the adaptive engine picks
// engines with; see Config.AutoCal. Leave it nil to use the process-
// wide calibration measured on first use.
type AutoCalibration = core.AutoCalibration

// Workspace is a pool of reusable engine state: Acquire a Buffers,
// run any number of pooled computations on it, Release it back. The
// pooled methods perform zero steady-state heap allocations for
// operators with a fast path (int64/float64 add and max).
type Workspace[T any] = core.Workspace[T]

// Buffers is reusable engine state drawn from a Workspace. Not safe
// for concurrent use; results alias internal storage and are valid
// until the next call on the same Buffers or its Release.
type Buffers[T any] = core.Buffers[T]

// NewWorkspace returns an empty Workspace.
func NewWorkspace[T any]() *Workspace[T] { return core.NewWorkspace[T]() }

// Compute runs the multiprefix operation through the "auto" backend:
// serial for small inputs, multicore for large ones, with the
// crossover calibrated on first use. For repeated calls on the same
// labels, build a Plan instead (see NewPlan).
func Compute[T any](op Op[T], values []T, labels []int, m int) (Result[T], error) {
	return backend.Compute("auto", op, values, labels, m, Config{})
}

// Reduce runs the multireduce operation (reductions only, paper §4.2)
// through the "auto" backend.
func Reduce[T any](op Op[T], values []T, labels []int, m int) ([]T, error) {
	return backend.Reduce("auto", op, values, labels, m, Config{})
}

// Auto runs the multiprefix operation through the adaptive engine: it
// picks Serial, Chunked or Parallel per call from the input shape,
// cfg.Workers and the calibrated crossover points (cfg.AutoCal or the
// process-wide measurement), and degrades to the serial reference on
// an internal failure. Invalid input and cancellation are returned
// as-is.
func Auto[T any](op Op[T], values []T, labels []int, m int, cfg Config) (Result[T], error) {
	return core.Auto(op, values, labels, m, cfg)
}

// AutoReduce is the multireduce counterpart of Auto.
func AutoReduce[T any](op Op[T], values []T, labels []int, m int, cfg Config) ([]T, error) {
	return core.AutoReduce(op, values, labels, m, cfg)
}

// AutoChoice reports which engine Auto would run for a problem of n
// elements and m labels under cfg — for tests, tracing and capacity
// planning.
func AutoChoice(n, m int, cfg Config) string {
	return core.AutoChoice(n, m, cfg)
}

// AutoEngine adapts Auto to the Engine signature for the derived
// operations.
func AutoEngine[T any](cfg Config) Engine[T] { return core.AutoEngine[T](cfg) }

// ComputeCtx is Compute under a cancellation context: an already-
// cancelled context returns ctx.Err() before any phase runs, and a
// mid-run cancellation aborts within a few thousand elements. A nil
// context is treated as context.Background().
func ComputeCtx[T any](ctx context.Context, op Op[T], values []T, labels []int, m int) (Result[T], error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result[T]{}, err
		}
	}
	return backend.Compute("auto", op, values, labels, m, Config{Ctx: ctx})
}

// ReduceCtx is Reduce under a cancellation context; a nil context is
// treated as context.Background().
func ReduceCtx[T any](ctx context.Context, op Op[T], values []T, labels []int, m int) ([]T, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return backend.Reduce("auto", op, values, labels, m, Config{Ctx: ctx})
}

// ParallelCtx is Parallel under a cancellation context, polled at
// barrier boundaries.
func ParallelCtx[T any](ctx context.Context, op Op[T], values []T, labels []int, m int, cfg Config) (Result[T], error) {
	return core.ParallelCtx(ctx, op, values, labels, m, cfg)
}

// ChunkedCtx is Chunked under a cancellation context, polled every few
// thousand elements within each chunk.
func ChunkedCtx[T any](ctx context.Context, op Op[T], values []T, labels []int, m int, cfg Config) (Result[T], error) {
	return core.ChunkedCtx(ctx, op, values, labels, m, cfg)
}

// Fallback wraps an engine so that a panic or internal error degrades
// to the serial reference engine instead of failing the request;
// invalid input and cancellation are returned as-is. See
// core.Fallback for the report semantics.
func Fallback[T any](primary Engine[T], report *FallbackReport) Engine[T] {
	return core.Fallback(primary, report)
}

// Serial runs the one-pass reference algorithm (paper Figure 2).
func Serial[T any](op Op[T], values []T, labels []int, m int) (Result[T], error) {
	return core.Serial(op, values, labels, m)
}

// Spinetree runs the paper's four-phase algorithm sequentially — the
// algorithm under study, exposed for verification and tracing.
func Spinetree[T any](op Op[T], values []T, labels []int, m int, cfg Config) (Result[T], error) {
	return core.Spinetree(op, values, labels, m, cfg)
}

// Parallel runs the four-phase algorithm on a pool of goroutines in
// barrier-synchronous steps, with the CRCW-ARB concurrent write
// realized by atomic stores.
func Parallel[T any](op Op[T], values []T, labels []int, m int, cfg Config) (Result[T], error) {
	return core.Parallel(op, values, labels, m, cfg)
}

// Chunked runs the practical multicore engine: per-worker serial
// passes stitched with an exclusive scan over chunk reductions.
func Chunked[T any](op Op[T], values []T, labels []int, m int, cfg Config) (Result[T], error) {
	return core.Chunked(op, values, labels, m, cfg)
}

// SerialEngine, SpinetreeEngine, ParallelEngine and ChunkedEngine
// adapt the engines to the Engine signature for the derived
// operations.
func SerialEngine[T any]() Engine[T]              { return core.SerialEngine[T]() }
func SpinetreeEngine[T any](cfg Config) Engine[T] { return core.SpinetreeEngine[T](cfg) }
func ParallelEngine[T any](cfg Config) Engine[T]  { return core.ParallelEngine[T](cfg) }
func ChunkedEngine[T any](cfg Config) Engine[T]   { return core.ChunkedEngine[T](cfg) }

// SegmentedScan computes an exclusive segmented scan: for each
// element, the combine of preceding values in its segment; segments
// marks segment starts. Returns per-element scans and per-segment
// totals. (Paper §1: a segmented scan is a multiprefix with one label
// per segment.)
func SegmentedScan[T any](op Op[T], values []T, segments []bool, engine Engine[T]) (scans, totals []T, err error) {
	return core.SegmentedScan(op, values, segments, engine)
}

// FetchOp performs deterministic fetch-and-op (paper §1): cells[a]
// accumulates increments addressed to it, each request receiving the
// pre-update value, in vector order. Mutates cells.
func FetchOp[T any](op Op[T], cells []T, addrs []int, increments []T, engine Engine[T]) ([]T, error) {
	return core.FetchOp(op, cells, addrs, increments, engine)
}

// Enumerate ranks each element within its label class (0, 1, 2, ... in
// vector order) and counts each class — multiprefix-PLUS over ones.
func Enumerate(labels []int, m int, engine Engine[int64]) (ranks, counts []int64, err error) {
	return core.Enumerate(labels, m, engine)
}

// EnumerateIn is Enumerate drawing its ones vector from b's pooled
// storage instead of allocating.
func EnumerateIn(b *Buffers[int64], labels []int, m int, engine Engine[int64]) (ranks, counts []int64, err error) {
	return core.EnumerateIn(b, labels, m, engine)
}

// SegmentedScanIn is SegmentedScan drawing its derived label vector
// from b's pooled storage instead of allocating.
func SegmentedScanIn[T any](b *Buffers[T], op Op[T], values []T, segments []bool, engine Engine[T]) (scans, totals []T, err error) {
	return core.SegmentedScanIn(b, op, values, segments, engine)
}

// CombiningSend performs the Connection Machine's combining send
// (paper §1): values arriving at the same dst cell combine with op, in
// vector order, on top of the cell's existing contents.
func CombiningSend[T any](op Op[T], dst []T, dest []int, values []T, engine Engine[T]) error {
	return core.CombiningSend(op, dst, dest, values, engine)
}

// Beta is CM-Lisp's β operation (paper §1): the combine of the values
// sharing each key, reported only for keys that occur.
func Beta[T any](op Op[T], values []T, keys []int, m int, engine Engine[T]) (map[int]T, error) {
	return core.Beta(op, values, keys, m, engine)
}

// InclusiveMulti converts exclusive multiprefix sums into inclusive
// ones: inclusive_i = multi_i ⊕ a_i.
func InclusiveMulti[T any](op Op[T], multi, values []T) ([]T, error) {
	return core.InclusiveMulti(op, multi, values)
}
